"""The cross-process aggregation protocol.

Worker threads and (future) worker processes collect into their own
private :class:`~repro.obs.registry.Registry` (installed thread-locally
with :func:`repro.obs.registry.using`), then report back to the parent
as a *portable snapshot* — a pure-JSON document that survives a
process boundary::

    {"schema": "repro.obs/worker@1", "worker": "task3",
     "counters": {...}, "gauges": {...}, "histograms": {...},
     "spans": {"events": [...], "dropped": 0}}

The parent folds each document in with :func:`merge_portable` in a
deterministic (work-list) order: counters and histograms merge into
their global keys, gauges and spans keep ``worker`` provenance labels
(see :meth:`Registry.merge_snapshot`).  ``analysis.sweep`` and
``compare_partial_vs_perfect`` already speak this protocol over
threads; the sharded multiprocess engine backend will ship the same
documents over pipes.
"""

from __future__ import annotations

import json

from repro.errors import ConfigurationError
from repro.obs.registry import Registry

WORKER_SCHEMA = "repro.obs/worker@1"


def portable_snapshot(registry: Registry, *, worker: str | None = None) -> dict:
    """Serialise ``registry`` for transport to a parent process.

    The result is guaranteed JSON-round-trippable; callers crossing a
    real process boundary can ``json.dumps`` it directly.
    """
    doc = {"schema": WORKER_SCHEMA, "worker": worker}
    doc.update(registry.snapshot())
    return doc


def merge_portable(
    registry: Registry, document: dict, *, worker: str | None = None
) -> None:
    """Fold a portable snapshot into ``registry``.

    ``worker`` overrides the document's own label (the parent names
    workers by work-list position, never by completion order, so the
    merge is deterministic for any worker count).
    """
    if document.get("schema") != WORKER_SCHEMA:
        raise ConfigurationError(
            f"not a {WORKER_SCHEMA} document (schema="
            f"{document.get('schema')!r})"
        )
    label = worker if worker is not None else document.get("worker")
    registry.merge_snapshot(document, worker=label)


def roundtrip(document: dict) -> dict:
    """JSON-encode and decode a portable snapshot — what an actual
    process boundary does.  Thread-based workers call this too, so the
    protocol is exercised (and its JSON-safety enforced) on every
    parallel run, not just in the future multiprocess backend."""
    return json.loads(json.dumps(document))
