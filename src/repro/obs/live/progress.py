"""Terminal progress view for ``--live`` runs.

Renders a single carriage-return-overwritten status line on stderr —
phase, done/total, items per second, and an ETA — from the progress
events long-running commands emit.  Rendering is rate-limited
(``min_interval``) so per-pattern certify loops cannot drown the
terminal, and disabled entirely when stderr is not a TTY unless
``force=True`` (tests force it with a StringIO).

The view is a journal subscriber like any other sink: it keys off
``phase`` and ``progress`` events, so everything it shows is also in
the journal a crash report preserves.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, TextIO


def _fmt_eta(seconds: float) -> str:
    seconds = max(0, int(round(seconds)))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


class LiveView:
    """Single-line live progress renderer."""

    def __init__(
        self,
        stream: TextIO | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        min_interval: float = 0.1,
        force: bool = False,
    ):
        self.stream = stream if stream is not None else sys.stderr
        self.clock = clock
        self.min_interval = min_interval
        self.enabled = force or bool(getattr(self.stream, "isatty", lambda: False)())
        self._last_render = -float("inf")
        self._phase: str | None = None
        self._phase_t0 = 0.0
        self._phase_done0 = 0.0
        self._dirty = False

    # -- journal sink ----------------------------------------------------
    def __call__(self, event: dict) -> None:
        kind = event.get("type")
        if kind == "phase":
            self.update(str(event.get("name")), 0, event.get("total"))
        elif kind == "progress":
            self.update(
                str(event.get("phase", self._phase)),
                event.get("done"),
                event.get("total"),
            )

    # -- rendering -------------------------------------------------------
    def update(
        self,
        phase: str,
        done: float | None = None,
        total: float | None = None,
    ) -> None:
        if not self.enabled:
            return
        now = self.clock()
        if phase != self._phase:
            self._phase = phase
            self._phase_t0 = now
            self._phase_done0 = done or 0.0
        elif now - self._last_render < self.min_interval:
            return
        parts = [f"[{phase}]"]
        if done is not None:
            parts.append(
                f"{done:g}/{total:g}" if total is not None else f"{done:g}"
            )
            elapsed = now - self._phase_t0
            progressed = done - self._phase_done0
            if elapsed > 0 and progressed > 0:
                rate = progressed / elapsed
                parts.append(f"{rate:,.1f}/s")
                if total is not None and total > done:
                    parts.append(f"eta {_fmt_eta((total - done) / rate)}")
            if total:
                parts.append(f"({done / total:.0%})")
        self._last_render = now
        self._dirty = True
        self.stream.write("\r\x1b[2K" + " ".join(parts))
        self.stream.flush()

    def note(self, text: str) -> None:
        """Print a full line without disturbing the status line."""
        if not self.enabled:
            return
        prefix = "\r\x1b[2K" if self._dirty else ""
        self.stream.write(f"{prefix}{text}\n")
        self.stream.flush()
        self._dirty = False

    def close(self) -> None:
        if self.enabled and self._dirty:
            self.stream.write("\n")
            self.stream.flush()
            self._dirty = False
