"""The live event journal: schema-tagged, append-only JSONL telemetry.

Post-hoc snapshots (:mod:`repro.obs.export`) only become visible after
a run exits cleanly; the journal streams the same information *during*
the run, one JSON object per line, so a hung certify or a crashed
sweep still leaves a forensic trail and a tail-reader can render live
progress.

Line format (``schema="repro.obs/journal@1"`` on the ``start`` line)::

    {"seq": 0, "t": ..., "type": "start", "schema": "repro.obs/journal@1",
     "command": "faults-sweep"}
    {"seq": 1, "t": ..., "type": "phase", "name": "sweep", "total": 3}
    {"seq": 2, "t": ..., "type": "counter", "key": "sim.delivered", "delta": 640}
    {"seq": 3, "t": ..., "type": "gauge", "key": "proc.rss_kb", "value": 81234}
    {"seq": 4, "t": ..., "type": "hist", "key": "sim.round.seconds",
     "count": 20, "sum": 0.08, "min": ..., "max": ..., "buckets": {...}}
    {"seq": 5, "t": ..., "type": "span", "name": "sim.run", "path": ...,
     "depth": 0, "start": ..., "duration_s": ..., "meta": {...}}
    {"seq": 6, "t": ..., "type": "series", "key": "flows.queue_depth{...}",
     "budget": 256, "stride": 1, "count": ..., "points": [[t, v], ...]}
    {"seq": 7, "t": ..., "type": "heartbeat", "rss_kb": ..., "cpu_s": ...}
    {"seq": 8, "t": ..., "type": "end", "spans_dropped": 0}

Metric events are **deltas since the previous flush**, so replaying a
journal (:func:`replay_journal`) reduces to exactly the live
registry's final totals — including metrics merged in from worker
registries, because the merge lands in the parent before the next
flush.  Gauges carry absolute values (last write wins on replay), and
``series`` frames carry the series' full decimated point buffer (also
last-write-wins, so replay reproduces the registry's series exactly —
the buffer is bounded, see :mod:`repro.obs.timeseries`).  Spans carry
``span_id``/``parent_id`` when a trace context is active
(:mod:`repro.obs.tracectx`), which is what ``repro obs analyze``
reconstructs the causal tree from.

The journal is the event *bus* as well as the file: in-memory sinks
(the flight recorder's ring buffer, the ``--live`` progress view)
subscribe with :meth:`EventJournal.subscribe` and see every event,
with or without a backing file.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Callable, Iterable

from repro.errors import ConfigurationError
from repro.obs.registry import Registry
from repro.obs.tracing import SpanRecord

JOURNAL_SCHEMA = "repro.obs/journal@1"

#: Spans journaled per run before further spans are counted, not
#: written (an n=4096 batch sweep emits one engine.stage span per chip
#: layer per call — unbounded journals must stay impossible).
DEFAULT_SPAN_LIMIT = 10_000


class EventJournal:
    """Append-only event stream with optional JSONL persistence.

    ``path=None`` keeps the journal purely in-memory (events still
    reach subscribed sinks) — what ``--live`` without ``--journal``
    uses.  Thread-safe: the resource sampler emits heartbeats from its
    own thread.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        clock: Callable[[], float] = time.time,
        command: str | None = None,
        span_limit: int = DEFAULT_SPAN_LIMIT,
    ):
        self.path = Path(path) if path is not None else None
        self.clock = clock
        self.command = command
        self.span_limit = span_limit
        self.spans_written = 0
        self.spans_dropped = 0
        self.seq = 0
        self.closed = False
        self._sinks: list[Callable[[dict], None]] = []
        self._lock = threading.Lock()
        self._fh = None
        if self.path is not None:
            if self.path.exists() and self.path.is_dir():
                raise ConfigurationError(f"{self.path} is a directory")
            self._fh = self.path.open("w", encoding="utf-8")
        start: dict = {"schema": JOURNAL_SCHEMA}
        if command is not None:
            start["command"] = command
        self.emit("start", **start)

    # -- core -----------------------------------------------------------
    def subscribe(self, sink: Callable[[dict], None]) -> None:
        """Register an in-memory consumer called with every event."""
        self._sinks.append(sink)

    def emit(self, type: str, **fields: object) -> dict:
        """Append one event; returns the event dict."""
        with self._lock:
            event = {"seq": self.seq, "t": self.clock(), "type": type, **fields}
            self.seq += 1
            if self._fh is not None and not self._fh.closed:
                self._fh.write(json.dumps(event) + "\n")
                self._fh.flush()  # live tailers must see every line
        for sink in self._sinks:
            try:
                sink(event)
            except Exception:
                # A broken consumer must not take the journal down.
                pass
        return event

    def emit_span(self, record: SpanRecord) -> None:
        """Tracer sink: stream one completed span (budgeted)."""
        if self.spans_written < self.span_limit:
            self.spans_written += 1
            self.emit("span", **record.as_dict())
        else:
            self.spans_dropped += 1

    def close(self) -> None:
        if self.closed:
            return
        self.emit("end", spans_dropped=self.spans_dropped)
        self.closed = True
        if self._fh is not None:
            self._fh.close()

    def __enter__(self) -> EventJournal:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class JournalSink:
    """Connects a :class:`~repro.obs.registry.Registry` to a journal.

    Spans stream as they complete (the tracer's ``sink`` hook);
    counters/gauges/histograms are flushed as *deltas* whenever
    :meth:`flush` is called — long-running commands flush at every
    progress step, so a tail-reader sees totals grow monotonically and
    a killed run loses at most one flush interval of metric deltas.
    """

    def __init__(self, registry: Registry, journal: EventJournal):
        self.registry = registry
        self.journal = journal
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._hists: dict[str, dict] = {}
        self._series: dict[str, int] = {}
        self._previous_sink = registry.tracer.sink
        registry.tracer.sink = journal.emit_span

    def flush(self) -> int:
        """Emit deltas vs the previous flush; returns events emitted."""
        emitted = 0
        reg = self.registry
        for key, counter in list(reg._counters.items()):
            delta = counter.value - self._counters.get(key, 0.0)
            if delta:
                self.journal.emit("counter", key=key, delta=delta)
                self._counters[key] = counter.value
                emitted += 1
        for key, gauge in list(reg._gauges.items()):
            if self._gauges.get(key) != gauge.value:
                self.journal.emit("gauge", key=key, value=gauge.value)
                self._gauges[key] = gauge.value
                emitted += 1
        for key, hist in list(reg._histograms.items()):
            last = self._hists.get(key, {"count": 0, "sum": 0.0})
            if hist.count != last["count"]:
                delta_buckets = {
                    b: n - last.get("buckets", {}).get(b, 0)
                    for b, n in hist.buckets.items()
                    if n - last.get("buckets", {}).get(b, 0)
                }
                self.journal.emit(
                    "hist",
                    key=key,
                    count=hist.count - last["count"],
                    sum=hist.total - last["sum"],
                    min=hist.min if hist.count else None,
                    max=hist.max if hist.count else None,
                    buckets=delta_buckets,
                )
                self._hists[key] = {
                    "count": hist.count,
                    "sum": hist.total,
                    "buckets": dict(hist.buckets),
                }
                emitted += 1
        for key, series in list(reg._series.items()):
            # Series frames are snapshots, not deltas (the buffer is
            # bounded, so re-emitting the whole thing stays cheap and
            # replay is trivially last-write-wins).
            if series.count != self._series.get(key):
                self.journal.emit("series", key=key, **series.as_dict())
                self._series[key] = series.count
                emitted += 1
        return emitted

    def close(self) -> None:
        """Final flush and detach from the tracer."""
        self.flush()
        self.registry.tracer.sink = self._previous_sink


# -- reading and replaying ----------------------------------------------
def read_journal(source: str | Path | Iterable[dict]) -> list[dict]:
    """Load journal events from a path (JSONL) or pass an event list
    through, validating the ``start`` line's schema tag."""
    if isinstance(source, (str, Path)):
        path = Path(source)
        if not path.exists():
            raise ConfigurationError(f"no journal at {path}")
        events = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
    else:
        events = list(source)
    if not events:
        raise ConfigurationError("journal is empty")
    head = events[0]
    if head.get("type") != "start" or head.get("schema") != JOURNAL_SCHEMA:
        raise ConfigurationError(
            f"not a {JOURNAL_SCHEMA} journal "
            f"(first event: {head.get('type')!r}/{head.get('schema')!r})"
        )
    return events


def replay_journal(source: str | Path | Iterable[dict]) -> dict:
    """Reduce a journal back to a registry-snapshot-shaped dict.

    Counter/histogram deltas accumulate, gauges take their last value,
    spans collect in order — so for any journaled run,
    ``replay_journal(path)["counters"] == registry.snapshot()["counters"]``
    exactly (the parity the tier-1 suite pins).
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    hists: dict[str, dict] = {}
    series: dict[str, dict] = {}
    spans: list[dict] = []
    dropped = 0
    for event in read_journal(source):
        kind = event.get("type")
        if kind == "counter":
            counters[event["key"]] = counters.get(event["key"], 0.0) + event["delta"]
        elif kind == "gauge":
            gauges[event["key"]] = event["value"]
        elif kind == "series":
            # Frames carry the full decimated buffer: last write wins.
            series[event["key"]] = {
                key: event[key]
                for key in ("budget", "stride", "count", "points")
                if key in event
            }
        elif kind == "hist":
            h = hists.setdefault(
                event["key"],
                {"count": 0, "sum": 0.0, "min": None, "max": None, "buckets": {}},
            )
            h["count"] += event["count"]
            h["sum"] += event["sum"]
            for bound, op in (("min", min), ("max", max)):
                value = event.get(bound)
                if value is not None:
                    h[bound] = value if h[bound] is None else op(h[bound], value)
            for bucket, n in (event.get("buckets") or {}).items():
                h["buckets"][bucket] = h["buckets"].get(bucket, 0) + n
        elif kind == "span":
            spans.append(
                {
                    key: event[key]
                    for key in (
                        "name",
                        "path",
                        "depth",
                        "start",
                        "duration_s",
                        "meta",
                        "span_id",
                        "parent_id",
                    )
                    if key in event
                }
            )
        elif kind == "end":
            dropped = int(event.get("spans_dropped", 0))
    for h in hists.values():
        h["mean"] = (h["sum"] / h["count"]) if h["count"] else 0.0
        h["buckets"] = dict(sorted(h["buckets"].items()))
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": {k: hists[k] for k in sorted(hists)},
        "series": {k: series[k] for k in sorted(series)},
        "spans": {"events": spans, "dropped": dropped},
    }
