"""The failure flight recorder: a ring buffer dumped on crash.

Subscribed to the event journal, the recorder keeps the most recent
``capacity`` events in a bounded deque.  When a run dies — an
unhandled exception, a contract violation (CLI exit 1), or a
regression-gate trip — the CLI exit paths call :func:`crash_report`
and write a ``repro.obs/crash@1`` JSON: the exception, the last N
events (so the heartbeats, counters, and spans leading up to death
are preserved), the failing span, the open-span path at the moment of
the dump, and the final counter totals.

The recorder costs one deque append per journal event; it is always
on when any live telemetry is active.
"""

from __future__ import annotations

import time
import traceback
from collections import deque
from pathlib import Path

from repro.errors import ConfigurationError, exit_code_for

CRASH_SCHEMA = "repro.obs/crash@1"

#: Recent-event window kept for the crash report.
DEFAULT_CAPACITY = 256


def failing_span(events) -> dict | None:
    """The innermost span an exception escaped from: the *first*
    error-tagged span event in ``events`` (spans complete innermost-
    first while an exception unwinds), else None.

    A shard whose worker was SIGKILLed never completes its span — the
    process that owned it is gone — so when no error-tagged span
    exists, the most recent supervisor ``worker_death`` frame stands in
    for it: the crash report still names the shard that took its worker
    down."""
    events = list(events)  # callers pass reversed() iterators
    for event in events:
        if event.get("type") == "span" and "error" in (event.get("meta") or {}):
            return {
                "name": event.get("name"),
                "path": event.get("path"),
                "error": event["meta"].get("error"),
                "duration_s": event.get("duration_s"),
            }
    for event in events:
        if event.get("type") == "worker_death":
            return {
                "name": "engine.shard",
                "path": None,
                "error": f"worker-death (shard {event.get('shard')})",
                "duration_s": None,
            }
    return None


class FlightRecorder:
    """Bounded ring buffer of recent journal events."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ConfigurationError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self.events: deque[dict] = deque(maxlen=capacity)
        self.total_seen = 0

    def record(self, event: dict) -> None:
        """Journal sink: remember this event (oldest falls out)."""
        self.events.append(event)
        self.total_seen += 1

    def crash_report(
        self,
        *,
        reason: str,
        command: str | None = None,
        exc: BaseException | None = None,
        registry=None,
        detail: dict | None = None,
    ) -> dict:
        """Assemble the crash document (JSON-ready)."""
        events = list(self.events)
        report: dict = {
            "schema": CRASH_SCHEMA,
            "reason": reason,
            "command": command,
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "events_seen": self.total_seen,
            "events": events,
            "failing_span": failing_span(reversed(events)),
        }
        if exc is not None:
            report["exception"] = {
                "type": type(exc).__name__,
                "message": str(exc),
                "exit_code": exit_code_for(exc),
                "traceback": traceback.format_exception(
                    type(exc), exc, exc.__traceback__
                ),
            }
        if registry is not None:
            snapshot = registry.snapshot()
            report["open_spans"] = registry.tracer.active_path
            report["counters"] = snapshot["counters"]
            report["gauges"] = snapshot["gauges"]
        if detail:
            report["detail"] = detail
        return report

    def write(self, path: str | Path, **kwargs) -> Path:
        """Write :meth:`crash_report` to ``path`` (parents created)."""
        import json

        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.crash_report(**kwargs), indent=2, default=str) + "\n",
            encoding="utf-8",
        )
        return target


def read_crash_report(path: str | Path) -> dict:
    """Load and schema-check a crash report."""
    import json

    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if document.get("schema") != CRASH_SCHEMA:
        raise ConfigurationError(f"{path} is not a {CRASH_SCHEMA} crash report")
    return document
