"""repro.obs.live — streaming telemetry for in-flight runs.

Everything in :mod:`repro.obs` is post-hoc: metrics surface after a
run exits cleanly.  This package adds the live layer the scale-out
roadmap items need:

* :mod:`.journal` — the schema-tagged append-only event journal
  (``repro.obs/journal@1`` JSONL) plus delta-flush sinks and exact
  replay;
* :mod:`.merge` — the cross-process aggregation protocol
  (``repro.obs/worker@1`` portable snapshots, deterministic merge);
* :mod:`.resource` — the background RSS/CPU/GC sampler and heartbeats;
* :mod:`.progress` — the ``--live`` terminal progress view;
* :mod:`.flight` — the bounded flight recorder and
  ``repro.obs/crash@1`` crash reports;
* :mod:`.prometheus` — OpenMetrics-style text exposition.

See the "Live telemetry" section of ``docs/observability.md``.
"""

from repro.obs.live.flight import (
    CRASH_SCHEMA,
    FlightRecorder,
    failing_span,
    read_crash_report,
)
from repro.obs.live.journal import (
    JOURNAL_SCHEMA,
    EventJournal,
    JournalSink,
    read_journal,
    replay_journal,
)
from repro.obs.live.merge import (
    WORKER_SCHEMA,
    merge_portable,
    portable_snapshot,
    roundtrip,
)
from repro.obs.live.progress import LiveView
from repro.obs.live.prometheus import prometheus_text
from repro.obs.live.resource import ResourceSampler, sample_process

__all__ = [
    "CRASH_SCHEMA",
    "EventJournal",
    "FlightRecorder",
    "JOURNAL_SCHEMA",
    "JournalSink",
    "LiveView",
    "ResourceSampler",
    "WORKER_SCHEMA",
    "failing_span",
    "merge_portable",
    "portable_snapshot",
    "prometheus_text",
    "read_crash_report",
    "read_journal",
    "replay_journal",
    "roundtrip",
    "sample_process",
]
