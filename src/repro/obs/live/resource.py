"""Background resource sampling: RSS / CPU / GC gauges + heartbeats.

A :class:`ResourceSampler` runs a daemon thread that, every
``interval`` seconds, reads process vitals and

* sets the ``proc.rss_kb`` / ``proc.cpu_s`` / ``proc.gc_collections``
  gauges on the registry, and
* emits a ``heartbeat`` journal event carrying the same numbers —

so a tail-reader can distinguish "still computing" from "hung", and a
flight-recorder crash report shows the memory trajectory right before
death.  The sampler's gauges and counter are created eagerly in the
constructor (before the thread starts) so the steady-state thread only
*writes values* — it never mutates the registry's metric dicts while
the main thread iterates them.

Timing is injectable: tests drive :meth:`sample_once` directly and
pass a fake ``clock``, so nothing here ever sleeps in the tier-1
suite.
"""

from __future__ import annotations

import gc
import os
import threading
import time
from typing import Callable

from repro.obs.registry import Registry

try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (ValueError, OSError, AttributeError):  # pragma: no cover - non-POSIX
    _PAGE_SIZE = 4096


def sample_process() -> dict:
    """Current process vitals: resident set (KiB), cumulative CPU
    seconds (user+system), and total GC collections."""
    rss_kb = None
    try:
        with open("/proc/self/statm", encoding="ascii") as fh:
            rss_kb = int(fh.read().split()[1]) * _PAGE_SIZE // 1024
    except (OSError, IndexError, ValueError):  # pragma: no cover - non-Linux
        try:
            import resource

            rss_kb = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
        except ImportError:
            rss_kb = None
    times = os.times()
    return {
        "rss_kb": rss_kb,
        "cpu_s": round(times.user + times.system, 6),
        "gc_collections": sum(s["collections"] for s in gc.get_stats()),
    }


class ResourceSampler:
    """Samples process vitals on a fixed clock until stopped."""

    def __init__(
        self,
        registry: Registry,
        journal=None,
        *,
        interval: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        sampler: Callable[[], dict] = sample_process,
    ):
        self.registry = registry
        self.journal = journal
        self.interval = interval
        self.clock = clock
        self.sampler = sampler
        self.samples = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        # Eager creation: the thread must only write values (see
        # module docstring).
        self._rss = registry.gauge("proc.rss_kb")
        self._cpu = registry.gauge("proc.cpu_s")
        self._gc = registry.gauge("proc.gc_collections")
        self._beats = registry.counter("obs.heartbeats")

    def sample_once(self) -> dict:
        """Take one sample; returns the vitals recorded."""
        vitals = self.sampler()
        if vitals.get("rss_kb") is not None:
            self._rss.set(vitals["rss_kb"])
        self._cpu.set(vitals["cpu_s"])
        self._gc.set(vitals["gc_collections"])
        self._beats.inc()
        self.samples += 1
        if self.journal is not None:
            self.journal.emit("heartbeat", uptime=self.clock(), **vitals)
        return vitals

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    def start(self) -> ResourceSampler:
        """First sample synchronously, then sample on the thread."""
        self.sample_once()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> ResourceSampler:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
