"""Declarative service-level-objective gate (``repro obs slo``).

An SLO spec is a small TOML or JSON document of rules, each pinning one
scalar derived from a telemetry source to a threshold::

    schema = "repro.obs/slo@1"

    [[rules]]
    name = "p99 FCT"
    metric = "flows:concentrator.p99"
    op = "<="
    threshold = 600.0

Sources are either a replayed ``repro.obs/journal@1`` journal (its
counters / gauges / series / spans) or the JSON documents the flows CLI
writes (``repro flows run --format json`` /
``repro flows compare --format json``).  The metric selector grammar:

``counter:KEY``
    Final counter total (exact key, labels included).
``gauge:KEY``
    Last gauge value.
``ratio:K1/K2``
    Counter ``K1`` divided by counter ``K2`` (0/0 resolves to 0).
``series_max:KEY`` / ``series_last:KEY`` / ``series_mean:KEY``
    Aggregates over a journaled timeseries' retained points.
``worker_idle_pct``
    The *worst* worker's idle share of the dispatch window, percent
    (0 when the run had no workers — nothing was idle).
``flows:FABRIC.FIELD``
    Field of one fabric's result in a flows run/compare document
    (``p99``, ``loss_rate``, ``delivered_cells``, ...).

Evaluation is pure (:func:`evaluate_slo` returns verdicts); the CLI
turns failed verdicts into a :class:`~repro.errors.ConcentrationError`
so the process exits 1, or exits 0 under ``--warn-only`` — the CI
smoke wiring starts warn-only until the thresholds have soaked.

TOML parsing uses :mod:`tomllib` (Python >= 3.11); on older runtimes
write the spec as JSON — the loader degrades with a clear error, never
an ImportError.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError

SLO_SCHEMA = "repro.obs/slo@1"

_OPS = {
    "<=": lambda value, threshold: value <= threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<": lambda value, threshold: value < threshold,
    ">": lambda value, threshold: value > threshold,
}


@dataclass(frozen=True)
class SloRule:
    """One objective: ``metric op threshold``.

    ``default`` substitutes for an *absent* metric instead of failing
    the rule.  The journal sink only emits counters that ever moved, so
    "this counter stayed at zero" — the shape of every
    nothing-went-wrong objective, e.g. ``engine.shard_retries`` on a
    clean run — looks like a missing metric; ``default = 0`` states
    that absence is the passing value.  A present-but-NaN value still
    fails: defaults cover absence, never corruption.
    """

    name: str
    metric: str
    op: str
    threshold: float
    default: float | None = None

    def check(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)


@dataclass(frozen=True)
class SloVerdict:
    """The outcome of one rule against one source."""

    rule: SloRule
    value: float | None
    ok: bool
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "name": self.rule.name,
            "metric": self.rule.metric,
            "op": self.rule.op,
            "threshold": self.rule.threshold,
            "value": self.value,
            "ok": self.ok,
            "detail": self.detail,
        }


def load_slo_spec(path: str | Path) -> list[SloRule]:
    """Load and validate a spec file (``.toml`` or ``.json``)."""
    target = Path(path)
    if not target.exists():
        raise ConfigurationError(f"no SLO spec at {target}")
    text = target.read_text(encoding="utf-8")
    if target.suffix.lower() == ".json":
        document = json.loads(text)
    else:
        try:
            import tomllib
        except ImportError:  # Python < 3.11
            raise ConfigurationError(
                f"{target} is TOML but this Python has no tomllib "
                "(>= 3.11); write the spec as JSON instead"
            ) from None
        document = tomllib.loads(text)
    return parse_slo_spec(document, source=str(target))


def parse_slo_spec(document: dict, *, source: str = "<spec>") -> list[SloRule]:
    schema = document.get("schema")
    if schema != SLO_SCHEMA:
        raise ConfigurationError(
            f"{source}: expected schema {SLO_SCHEMA!r}, got {schema!r}"
        )
    raw_rules = document.get("rules")
    if not isinstance(raw_rules, list) or not raw_rules:
        raise ConfigurationError(f"{source}: spec has no rules")
    rules = []
    for index, raw in enumerate(raw_rules):
        try:
            op = str(raw["op"])
            if op not in _OPS:
                raise ConfigurationError(
                    f"{source}: rule {index}: unknown op {op!r} "
                    f"(use one of {sorted(_OPS)})"
                )
            default = raw.get("default")
            rules.append(
                SloRule(
                    name=str(raw.get("name") or raw["metric"]),
                    metric=str(raw["metric"]),
                    op=op,
                    threshold=float(raw["threshold"]),
                    default=float(default) if default is not None else None,
                )
            )
        except KeyError as exc:
            raise ConfigurationError(
                f"{source}: rule {index} is missing {exc}"
            ) from None
    return rules


# -- metric resolution ---------------------------------------------------
def _series_points(source: dict, key: str) -> list[float] | None:
    series = source.get("series", {}).get(key)
    if series is None:
        return None
    return [float(v) for _, v in series.get("points", [])]


def _flows_field(source: dict, selector: str) -> float | None:
    fabric, _, field = selector.partition(".")
    if not field:
        return None
    fabrics = source.get("fabrics")
    if fabrics is None:
        # A flows-run document: one result, addressable by its fabric
        # name or the generic "result".
        result = source.get("result")
        if result is None:
            return None
        if fabric not in ("result", str(result.get("fabric"))):
            return None
        value = result.get(field)
    else:
        value = (fabrics.get(fabric) or {}).get(field)
    return float(value) if value is not None else None


def _worker_idle_pct(source: dict) -> float:
    from repro.obs.perf.analyze import worker_rows

    rows = worker_rows(source.get("spans", {}).get("events", []))
    shares = [row["of_window"] for row in rows if row["of_window"] is not None]
    if not shares:
        return 0.0
    return max(0.0, (1.0 - min(shares)) * 100.0)


def resolve_metric(selector: str, source: dict) -> tuple[float | None, str]:
    """Resolve one selector against a source dict; returns
    ``(value, detail)`` with ``value=None`` when the metric is absent
    (which fails the rule — a missing objective is a violated one)."""
    kind, _, rest = selector.partition(":")
    if kind == "counter":
        value = source.get("counters", {}).get(rest)
        return (float(value), "") if value is not None else (None, "no such counter")
    if kind == "gauge":
        value = source.get("gauges", {}).get(rest)
        return (float(value), "") if value is not None else (None, "no such gauge")
    if kind == "ratio":
        numerator, _, denominator = rest.partition("/")
        counters = source.get("counters", {})
        if numerator not in counters or denominator not in counters:
            return None, "ratio needs both counters"
        denom = float(counters[denominator])
        if denom == 0.0:
            return (0.0, "0/0") if float(counters[numerator]) == 0.0 else (
                None,
                "division by zero",
            )
        return float(counters[numerator]) / denom, ""
    if kind in ("series_max", "series_last", "series_mean"):
        points = _series_points(source, rest)
        if not points:
            return None, "no such series (or empty)"
        if kind == "series_max":
            return max(points), ""
        if kind == "series_last":
            return points[-1], ""
        return sum(points) / len(points), ""
    if selector == "worker_idle_pct":
        return _worker_idle_pct(source), ""
    if kind == "flows":
        value = _flows_field(source, rest)
        return (value, "") if value is not None else (None, "no such flows field")
    return None, f"unknown selector kind {kind!r}"


def evaluate_slo(rules: list[SloRule], source: dict) -> list[SloVerdict]:
    """Check every rule; NaN values and missing metrics fail."""
    verdicts = []
    for rule in rules:
        value, detail = resolve_metric(rule.metric, source)
        if value is None and rule.default is not None:
            value, detail = rule.default, "defaulted (metric absent)"
        if value is None:
            verdicts.append(SloVerdict(rule, None, False, detail or "missing"))
        elif value != value:  # NaN — e.g. FCT percentiles with no completions
            verdicts.append(SloVerdict(rule, value, False, "value is NaN"))
        else:
            verdicts.append(SloVerdict(rule, value, rule.check(value), detail))
    return verdicts


def violations(verdicts: list[SloVerdict]) -> list[SloVerdict]:
    return [v for v in verdicts if not v.ok]


def slo_rows(verdicts: list[SloVerdict]) -> list[dict]:
    """Human-facing verdict rows for the CLI table."""
    rows = []
    for verdict in verdicts:
        value = verdict.value
        rows.append(
            {
                "objective": verdict.rule.name,
                "metric": verdict.rule.metric,
                "want": f"{verdict.rule.op} {verdict.rule.threshold:g}",
                "got": f"{value:g}" if value is not None else "-",
                "verdict": "ok" if verdict.ok else "FAIL",
                "detail": verdict.detail,
            }
        )
    return rows
