"""repro.obs — unified tracing, metrics, and profiling.

One process-wide, swappable :class:`Registry` of counters, gauges, and
magnitude-bucket histograms; span-based structured tracing with nested
``perf_counter`` timers; and JSON / Markdown exporters that plug into
:class:`repro.analysis.reporting.ReportBuilder`.

Disabled by default: the installed registry is a no-op
:class:`NullRegistry`, so instrumented library code runs unchanged and
produces byte-identical simulation results.  Enable collection with::

    from repro import obs

    with obs.collecting() as reg:
        summary = SwitchSimulation(switch, traffic).run(rounds=100)
    obs.write_metrics_json(reg.snapshot(), "metrics.json")

See ``docs/observability.md`` for the metric catalog and span
taxonomy, or run ``python -m repro obs``.
"""

from repro.obs.catalog import CATALOG, MetricInfo, catalog_rows, metric_names
from repro.obs.export import (
    SCHEMA_VERSION,
    metrics_markdown,
    read_metrics_json,
    write_metrics_json,
)
from repro.obs.metrics import Counter, Gauge, Histogram, bucket_key
from repro.obs.registry import (
    NULL_REGISTRY,
    NullRegistry,
    Registry,
    collecting,
    counter,
    enabled,
    gauge,
    get_registry,
    histogram,
    install,
    metric_key,
    series,
    span,
    split_metric_key,
    uninstall,
    using,
)
from repro.obs.runmeta import environment, git_dirty, git_sha, run_metadata
from repro.obs.timeseries import NullSeries, Series
from repro.obs.tracectx import TraceContext, child_context, new_trace_id
from repro.obs.tracing import SpanRecord, Tracer

__all__ = [
    "CATALOG",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricInfo",
    "NULL_REGISTRY",
    "NullRegistry",
    "NullSeries",
    "Registry",
    "SCHEMA_VERSION",
    "Series",
    "SpanRecord",
    "TraceContext",
    "Tracer",
    "bucket_key",
    "catalog_rows",
    "child_context",
    "collecting",
    "counter",
    "enabled",
    "environment",
    "gauge",
    "get_registry",
    "git_dirty",
    "git_sha",
    "histogram",
    "install",
    "metric_key",
    "metric_names",
    "metrics_markdown",
    "new_trace_id",
    "read_metrics_json",
    "run_metadata",
    "series",
    "span",
    "split_metric_key",
    "uninstall",
    "using",
    "write_metrics_json",
]
