"""Self-describing run metadata records.

The benchmark harness attaches one of these records to every bench so
a BENCH_*.json trajectory carries its own provenance: which commit
produced it (and whether the tree was dirty), which seed drove it, how
long it took, which interpreter/numpy built the numbers, and the
metric snapshot the instrumented code emitted while it ran.
"""

from __future__ import annotations

import os
import platform
import subprocess
import time
from functools import lru_cache
from pathlib import Path

from repro.obs.registry import NullRegistry, Registry

#: Bumped when the record layout changes.  Version 2 added
#: ``git_dirty`` and ``numpy`` (version 1 records carried only the SHA
#: and Python-level metadata); version 3 added ``cpu_count``, making
#: the 1-core caveat in docs/performance.md machine-checkable.
RECORD_VERSION = 3


def _git(args: list[str], cwd: str | None) -> str | None:
    where = cwd if cwd is not None else str(Path(__file__).resolve().parent)
    try:
        out = subprocess.run(
            ["git", *args],
            cwd=where,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout if out.returncode == 0 else None


@lru_cache(maxsize=None)
def git_sha(cwd: str | None = None) -> str | None:
    """HEAD commit of the repo containing ``cwd`` (or this file), or
    None outside a git checkout / without git."""
    out = _git(["rev-parse", "HEAD"], cwd)
    sha = out.strip() if out is not None else ""
    return sha or None


def git_dirty(cwd: str | None = None) -> bool | None:
    """Whether the working tree has uncommitted changes, or None
    outside a git checkout / without git.  Deliberately uncached: the
    tree can become dirty between two records of the same process."""
    out = _git(["status", "--porcelain"], cwd)
    if out is None:
        return None
    return bool(out.strip())


def numpy_version() -> str:
    import numpy

    return numpy.__version__


def environment() -> dict:
    """The provenance block shared by run records and bench-trajectory
    records: commit, dirty-tree flag, and toolchain versions."""
    return {
        "git_sha": git_sha(),
        "git_dirty": git_dirty(),
        "python": platform.python_version(),
        "numpy": numpy_version(),
        "platform": platform.platform(),
        # Scaling benches mean nothing without knowing how many cores
        # the host actually had (the docs/performance.md 1-core caveat).
        "cpu_count": os.cpu_count(),
    }


def run_metadata(
    *,
    run_id: str,
    seed: int | None,
    wall_s: float,
    registry: Registry | NullRegistry | None = None,
    started_at: float | None = None,
    extra: dict | None = None,
) -> dict:
    """Build one JSON-serialisable run record.

    ``run_id`` names the run (a pytest node id for benches), ``seed``
    is the RNG seed that drove it, ``wall_s`` the measured wall time,
    ``registry`` the metrics collected during the run (span events are
    summarised to a count — the full trace stays in metrics.json
    exports, not in run records).
    """
    snapshot = registry.snapshot() if registry is not None else None
    if snapshot is not None:
        spans = snapshot.pop("spans", {"events": [], "dropped": 0})
        snapshot["span_events"] = len(spans.get("events", [])) + spans.get(
            "dropped", 0
        )
    when = started_at if started_at is not None else time.time()
    return {
        "version": RECORD_VERSION,
        "run_id": run_id,
        "seed": seed,
        "started_at": time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime(when)),
        "wall_s": wall_s,
        "metrics": snapshot,
        **environment(),
        **(extra or {}),
    }
