"""Self-describing run metadata records.

The benchmark harness attaches one of these records to every bench so
a BENCH_*.json trajectory carries its own provenance: which commit
produced it, which seed drove it, how long it took, and the metric
snapshot the instrumented code emitted while it ran.
"""

from __future__ import annotations

import platform
import subprocess
import time
from functools import lru_cache
from pathlib import Path

from repro.obs.registry import NullRegistry, Registry

#: Bumped when the record layout changes.
RECORD_VERSION = 1


@lru_cache(maxsize=None)
def git_sha(cwd: str | None = None) -> str | None:
    """HEAD commit of the repo containing ``cwd`` (or this file), or
    None outside a git checkout / without git."""
    where = cwd if cwd is not None else str(Path(__file__).resolve().parent)
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=where,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def run_metadata(
    *,
    run_id: str,
    seed: int | None,
    wall_s: float,
    registry: Registry | NullRegistry | None = None,
    started_at: float | None = None,
    extra: dict | None = None,
) -> dict:
    """Build one JSON-serialisable run record.

    ``run_id`` names the run (a pytest node id for benches), ``seed``
    is the RNG seed that drove it, ``wall_s`` the measured wall time,
    ``registry`` the metrics collected during the run (span events are
    summarised to a count — the full trace stays in metrics.json
    exports, not in run records).
    """
    snapshot = registry.snapshot() if registry is not None else None
    if snapshot is not None:
        spans = snapshot.pop("spans", {"events": [], "dropped": 0})
        snapshot["span_events"] = len(spans.get("events", [])) + spans.get(
            "dropped", 0
        )
    when = started_at if started_at is not None else time.time()
    return {
        "version": RECORD_VERSION,
        "run_id": run_id,
        "git_sha": git_sha(),
        "seed": seed,
        "started_at": time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime(when)),
        "wall_s": wall_s,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "metrics": snapshot,
        **(extra or {}),
    }
