"""Process-wide, swappable metric registry.

The library's instrumentation hooks all funnel through the module-level
accessors here::

    from repro import obs

    obs.counter("sim.delivered").inc(12)
    with obs.span("sim.round", round=3):
        ...

By default the installed registry is a :class:`NullRegistry`: every
accessor returns a shared do-nothing object and spans are a reused
no-op context manager, so an uninstrumented run pays a few attribute
lookups per hook and nothing else — simulation results are identical
with observability on or off (the hooks never touch RNG state or data
paths).

To collect, install a real :class:`Registry` — either explicitly
(:func:`install` / :func:`uninstall`) or scoped with
:func:`collecting`::

    with obs.collecting() as reg:
        SwitchSimulation(switch, traffic).run(rounds=50)
    print(reg.snapshot()["counters"]["sim.delivered"])
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from time import perf_counter
from typing import Callable, ContextManager, Iterator

from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    NullCounter,
    NullGauge,
    NullHistogram,
)
from repro.obs.tracing import Tracer


def metric_key(name: str, labels: dict[str, object]) -> str:
    """Flatten a metric name plus labels into one stable key:
    ``name{k=v,...}`` with label keys sorted."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Registry:
    """Holds every live metric plus the span tracer for one collection
    scope."""

    enabled = True

    def __init__(
        self,
        max_trace_events: int = 10_000,
        clock: Callable[[], float] = perf_counter,
    ):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self.clock = clock
        self.tracer = Tracer(max_events=max_trace_events, clock=clock)

    # -- metric accessors (create on first use) -------------------------
    def counter(self, name: str, /, **labels: object) -> Counter:
        key = metric_key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter(key)
        return metric

    def gauge(self, name: str, /, **labels: object) -> Gauge:
        key = metric_key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge(key)
        return metric

    def histogram(self, name: str, /, **labels: object) -> Histogram:
        key = metric_key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(key)
        return metric

    # -- tracing --------------------------------------------------------
    @contextmanager
    def span(self, name: str, /, **meta: object) -> Iterator[None]:
        """Timed, nested span; the duration also lands in the
        ``<name>.seconds`` histogram."""
        with self.tracer.span(name, **meta):
            start = self.clock()
            try:
                yield
            finally:
                self.histogram(f"{name}.seconds").observe(self.clock() - start)

    # -- lifecycle ------------------------------------------------------
    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self.tracer.reset()

    def snapshot(self) -> dict:
        """One JSON-serialisable dict of everything collected so far."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.as_dict() for k, h in sorted(self._histograms.items())
            },
            "spans": self.tracer.as_dict(),
        }


class NullRegistry:
    """Do-nothing stand-in installed by default.

    Hands out shared null metrics and a reused no-op context manager,
    so disabled instrumentation costs one method call per hook.
    """

    enabled = False

    def counter(self, name: str, /, **labels: object) -> NullCounter:
        return NULL_COUNTER

    def gauge(self, name: str, /, **labels: object) -> NullGauge:
        return NULL_GAUGE

    def histogram(self, name: str, /, **labels: object) -> NullHistogram:
        return NULL_HISTOGRAM

    def span(self, name: str, /, **meta: object) -> ContextManager[None]:
        return nullcontext()

    def reset(self) -> None:
        pass

    def snapshot(self) -> dict:
        return {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "spans": {"events": [], "dropped": 0},
        }


NULL_REGISTRY = NullRegistry()
_active: Registry | NullRegistry = NULL_REGISTRY


def get_registry() -> Registry | NullRegistry:
    """The currently installed registry (the null one by default)."""
    return _active


def install(registry: Registry | NullRegistry) -> Registry | NullRegistry:
    """Install ``registry`` process-wide; returns the previous one so
    callers can restore it."""
    global _active
    previous = _active
    _active = registry
    return previous


def uninstall() -> Registry | NullRegistry:
    """Re-install the null registry; returns whatever was active."""
    return install(NULL_REGISTRY)


@contextmanager
def collecting(
    registry: Registry | None = None, *, max_trace_events: int = 10_000
) -> Iterator[Registry]:
    """Scope with a live registry installed; restores the previous
    registry (usually the null one) on exit."""
    reg = registry if registry is not None else Registry(max_trace_events)
    previous = install(reg)
    try:
        yield reg
    finally:
        install(previous)


def enabled() -> bool:
    """Whether a live (non-null) registry is installed."""
    return _active.enabled


# -- hook-side conveniences: obs.counter(...) etc. ----------------------
def counter(name: str, /, **labels: object):
    return _active.counter(name, **labels)


def gauge(name: str, /, **labels: object):
    return _active.gauge(name, **labels)


def histogram(name: str, /, **labels: object):
    return _active.histogram(name, **labels)


def span(name: str, /, **meta: object) -> ContextManager[None]:
    return _active.span(name, **meta)
