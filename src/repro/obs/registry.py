"""Process-wide, swappable metric registry.

The library's instrumentation hooks all funnel through the module-level
accessors here::

    from repro import obs

    obs.counter("sim.delivered").inc(12)
    with obs.span("sim.round", round=3):
        ...

By default the installed registry is a :class:`NullRegistry`: every
accessor returns a shared do-nothing object and spans are a reused
no-op context manager, so an uninstrumented run pays a few attribute
lookups per hook and nothing else — simulation results are identical
with observability on or off (the hooks never touch RNG state or data
paths).

To collect, install a real :class:`Registry` — either explicitly
(:func:`install` / :func:`uninstall`) or scoped with
:func:`collecting`::

    with obs.collecting() as reg:
        SwitchSimulation(switch, traffic).run(rounds=50)
    print(reg.snapshot()["counters"]["sim.delivered"])
"""

from __future__ import annotations

import threading
from contextlib import contextmanager, nullcontext
from time import perf_counter
from typing import Callable, ContextManager, Iterator

from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    NullCounter,
    NullGauge,
    NullHistogram,
)
from repro.obs.timeseries import NULL_SERIES, NullSeries, Series
from repro.obs.tracing import Tracer


def metric_key(name: str, labels: dict[str, object]) -> str:
    """Flatten a metric name plus labels into one stable key:
    ``name{k=v,...}`` with label keys sorted."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def split_metric_key(key: str) -> tuple[str, dict[str, str]]:
    """Invert :func:`metric_key`: ``"name{a=1,b=2}"`` back into
    ``("name", {"a": "1", "b": "2"})``.  Label *values* produced by the
    library never contain ``,`` or ``=``, which keeps this exact."""
    name, brace, rest = key.partition("{")
    if not brace:
        return key, {}
    labels: dict[str, str] = {}
    for part in rest.rstrip("}").split(","):
        if part:
            k, _, v = part.partition("=")
            labels[k] = v
    return name, labels


def _with_worker(key: str, worker: str) -> str:
    """Re-flatten ``key`` with a ``worker`` provenance label added."""
    name, labels = split_metric_key(key)
    labels["worker"] = worker
    return metric_key(name, labels)


class Registry:
    """Holds every live metric plus the span tracer for one collection
    scope."""

    enabled = True

    def __init__(
        self,
        max_trace_events: int = 10_000,
        clock: Callable[[], float] = perf_counter,
    ):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._series: dict[str, Series] = {}
        self.clock = clock
        self.tracer = Tracer(max_events=max_trace_events, clock=clock)

    # -- metric accessors (create on first use) -------------------------
    def counter(self, name: str, /, **labels: object) -> Counter:
        key = metric_key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter(key)
        return metric

    def gauge(self, name: str, /, **labels: object) -> Gauge:
        key = metric_key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge(key)
        return metric

    def histogram(self, name: str, /, **labels: object) -> Histogram:
        key = metric_key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(key)
        return metric

    def series(self, name: str, /, **labels: object) -> Series:
        """Bounded per-cycle timeseries (see
        :mod:`repro.obs.timeseries`)."""
        key = metric_key(name, labels)
        metric = self._series.get(key)
        if metric is None:
            metric = self._series[key] = Series(key)
        return metric

    # -- tracing --------------------------------------------------------
    @contextmanager
    def span(self, name: str, /, **meta: object) -> Iterator[None]:
        """Timed, nested span; the duration also lands in the
        ``<name>.seconds`` histogram."""
        with self.tracer.span(name, **meta):
            start = self.clock()
            try:
                yield
            finally:
                self.histogram(f"{name}.seconds").observe(self.clock() - start)

    # -- cross-worker aggregation ---------------------------------------
    def merge_snapshot(self, snapshot: dict, *, worker: str | None = None) -> None:
        """Fold another registry's :meth:`snapshot` into this one — the
        aggregation protocol worker threads/processes use to report
        back to a parent (see :mod:`repro.obs.live.merge`).

        Counters and histograms merge into their *original* keys, so
        the parent's totals are global (replaying a journal reproduces
        them exactly no matter where the increments happened).  Gauges
        are last-write-wins and meaningless summed, so each worker's
        gauges keep a ``worker=<label>`` provenance label; spans get
        ``worker`` added to their meta.  Every merge also increments
        ``obs.workers_merged{worker=...}`` so provenance survives in
        the metric namespace itself.
        """
        for key, value in snapshot.get("counters", {}).items():
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter(key)
            metric.inc(float(value))
        for key, value in snapshot.get("gauges", {}).items():
            target = _with_worker(key, worker) if worker is not None else key
            gauge = self._gauges.get(target)
            if gauge is None:
                gauge = self._gauges[target] = Gauge(target)
            gauge.set(float(value))
        for key, hist_dict in snapshot.get("histograms", {}).items():
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = Histogram(key)
            hist.merge_dict(hist_dict)
        for key, series_dict in snapshot.get("series", {}).items():
            # A worker's timeline is a per-worker fact (like a gauge):
            # rekey with provenance, never interleave into the parent's.
            target = _with_worker(key, worker) if worker is not None else key
            self._series[target] = Series.from_dict(target, series_dict)
        spans = snapshot.get("spans", {})
        self.tracer.absorb(
            spans.get("events", []), spans.get("dropped", 0), worker=worker
        )
        if worker is not None:
            self.counter("obs.workers_merged", worker=worker).inc()

    # -- lifecycle ------------------------------------------------------
    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._series.clear()
        self.tracer.reset()

    def snapshot(self) -> dict:
        """One JSON-serialisable dict of everything collected so far."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.as_dict() for k, h in sorted(self._histograms.items())
            },
            "series": {
                k: s.as_dict() for k, s in sorted(self._series.items())
            },
            "spans": self.tracer.as_dict(),
        }


class NullRegistry:
    """Do-nothing stand-in installed by default.

    Hands out shared null metrics and a reused no-op context manager,
    so disabled instrumentation costs one method call per hook.
    """

    enabled = False

    def counter(self, name: str, /, **labels: object) -> NullCounter:
        return NULL_COUNTER

    def gauge(self, name: str, /, **labels: object) -> NullGauge:
        return NULL_GAUGE

    def histogram(self, name: str, /, **labels: object) -> NullHistogram:
        return NULL_HISTOGRAM

    def series(self, name: str, /, **labels: object) -> NullSeries:
        return NULL_SERIES

    def span(self, name: str, /, **meta: object) -> ContextManager[None]:
        return nullcontext()

    def reset(self) -> None:
        pass

    def snapshot(self) -> dict:
        return {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "series": {},
            "spans": {"events": [], "dropped": 0},
        }


NULL_REGISTRY = NullRegistry()
_active: Registry | NullRegistry = NULL_REGISTRY

#: Per-thread registry overrides (a stack, so `using` nests).  Worker
#: threads route their instrumentation into a private registry without
#: disturbing the process-wide one — and without sharing the parent
#: tracer's span *stack* across threads, which would interleave
#: unrelated spans into bogus parent/child paths.
_tls = threading.local()


def _current() -> Registry | NullRegistry:
    override = getattr(_tls, "stack", None)
    if override:
        return override[-1]
    return _active


def get_registry() -> Registry | NullRegistry:
    """The currently active registry: this thread's `using` override
    if one is set, else the process-wide installed one (the null
    registry by default)."""
    return _current()


def install(registry: Registry | NullRegistry) -> Registry | NullRegistry:
    """Install ``registry`` process-wide; returns the previous one so
    callers can restore it."""
    global _active
    previous = _active
    _active = registry
    return previous


def uninstall() -> Registry | NullRegistry:
    """Re-install the null registry; returns whatever was active."""
    return install(NULL_REGISTRY)


@contextmanager
def collecting(
    registry: Registry | None = None, *, max_trace_events: int = 10_000
) -> Iterator[Registry]:
    """Scope with a live registry installed; restores the previous
    registry (usually the null one) on exit."""
    reg = registry if registry is not None else Registry(max_trace_events)
    previous = install(reg)
    try:
        yield reg
    finally:
        install(previous)


@contextmanager
def using(registry: Registry | NullRegistry) -> Iterator[Registry | NullRegistry]:
    """Route *this thread's* instrumentation into ``registry`` for the
    scope — the worker-side half of the cross-process aggregation
    protocol.  Unlike :func:`install`/:func:`collecting`, other
    threads are unaffected; the worker's registry is merged back into
    the parent with :meth:`Registry.merge_snapshot` afterwards."""
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    stack.append(registry)
    try:
        yield registry
    finally:
        stack.pop()


def enabled() -> bool:
    """Whether a live (non-null) registry is active on this thread."""
    return _current().enabled


# -- hook-side conveniences: obs.counter(...) etc. ----------------------
def counter(name: str, /, **labels: object):
    return _current().counter(name, **labels)


def gauge(name: str, /, **labels: object):
    return _current().gauge(name, **labels)


def histogram(name: str, /, **labels: object):
    return _current().histogram(name, **labels)


def series(name: str, /, **labels: object):
    return _current().series(name, **labels)


def span(name: str, /, **meta: object) -> ContextManager[None]:
    return _current().span(name, **meta)
