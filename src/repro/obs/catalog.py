"""Catalog of every metric and span the library emits.

Documentation-as-data: ``python -m repro obs`` renders this table, and
:mod:`docs/observability.md` mirrors it.  Keeping the names here (and
asserting the instrumented modules only use cataloged names, see
``tests/test_obs.py``) prevents the metric namespace from drifting.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MetricInfo:
    name: str
    kind: str  # "counter" | "gauge" | "histogram" | "series" | "span"
    labels: tuple[str, ...]
    description: str


CATALOG: tuple[MetricInfo, ...] = (
    # switches/
    MetricInfo("switch.built", "counter", ("name",),
               "switches instantiated through the registry, by design name"),
    MetricInfo("switch.route_calls", "counter", ("switch",),
               "ConcentratorSwitch.route invocations, by switch class"),
    MetricInfo("switch.valid_in", "counter", ("switch",),
               "valid messages presented to route(), by switch class"),
    MetricInfo("switch.routed_out", "counter", ("switch",),
               "messages that received an output path, by switch class"),
    # engine/
    MetricInfo("engine.plan_cache.hit", "counter", ("kind",),
               "compiled stage-plan cache hits, by plan kind"),
    MetricInfo("engine.plan_cache.miss", "counter", ("kind",),
               "stage-plan cache misses (plan compiled), by plan kind"),
    MetricInfo("engine.batch_setups", "counter", ("switch",),
               "setup_batch invocations, by switch class"),
    MetricInfo("engine.batch_trials", "counter", ("switch",),
               "total trials routed through setup_batch, by switch class"),
    MetricInfo("engine.plan_cache.restored", "counter", ("kind",),
               "plans installed from a shipped PlanCache.snapshot() "
               "payload (worker warm-start), by plan kind"),
    MetricInfo("engine.shards", "counter", ("backend",),
               "trial shards dispatched by an engine backend's "
               "run_stream/run_trials fan-out, by backend name; also the "
               "span wrapping the whole dispatch round (meta: backend, "
               "shards) — the causal parent shipped to every worker"),
    MetricInfo("engine.shard", "span", (),
               "one shard executing in a worker (meta: shard index)"),
    MetricInfo("engine.supervisor", "span", (),
               "one supervised dispatch round over the worker pool "
               "(meta: shards, workers, label) — wraps submission, the "
               "retry loop, and any respawns/fallbacks"),
    MetricInfo("engine.shard_retries", "counter", (),
               "shard resubmissions by the supervisor (worker death, "
               "deadline expiry, transient exception, or rescue after a "
               "pool respawn); zero on a clean run"),
    MetricInfo("engine.shard_timeouts", "counter", (),
               "shards that outlived the supervisor's per-shard "
               "deadline (each also costs a charged retry and a "
               "kill-respawn of the pool)"),
    MetricInfo("engine.pool_respawns", "counter", (),
               "worker-pool executor teardowns + rebuilds by the "
               "supervisor after a worker death or deadline expiry"),
    MetricInfo("engine.degraded_fallbacks", "counter", (),
               "shards run in-process in the parent after exhausting "
               "their retry budget (graceful degradation)"),
    MetricInfo("engine.run_plan", "span", (),
               "one batched plan execution (meta: plan, batch, valid)"),
    MetricInfo("engine.stage", "span", (),
               "one plan op inside engine.run_plan — chip layer, fixed "
               "permutation, or comparator stage (meta: kind, layer, ...)"),
    # network/simulate
    MetricInfo("sim.rounds", "counter", (),
               "simulation rounds executed by SwitchSimulation.run"),
    MetricInfo("sim.offered", "counter", (),
               "fresh messages offered by the traffic generator"),
    MetricInfo("sim.injected", "counter", (),
               "messages entering the switch (fresh + re-injected backlog)"),
    MetricInfo("sim.delivered", "counter", (),
               "messages delivered to an output"),
    MetricInfo("sim.lost", "counter", (),
               "messages permanently dropped by the congestion policy"),
    MetricInfo("sim.retried", "counter", (),
               "messages queued by the policy for a later round"),
    MetricInfo("sim.faulted", "counter", (),
               "messages killed at a flaky input pin before the switch"),
    MetricInfo("sim.expired", "counter", (),
               "messages the congestion policy aged out via its TTL"),
    MetricInfo("sim.run", "span", (),
               "one SwitchSimulation.run call (meta: rounds)"),
    MetricInfo("sim.round", "span", (),
               "one simulated round inside sim.run (meta: round)"),
    # network/flows (the event-driven flow simulator, see docs/flows.md)
    MetricInfo("flows.cells_offered", "counter", ("fabric",),
               "cell transmission attempts offered to a fabric stage "
               "(retransmissions count again), by fabric"),
    MetricInfo("flows.cells_delivered", "counter", ("fabric",),
               "cells delivered through the fabric, by fabric"),
    MetricInfo("flows.cells_dropped", "counter", ("fabric",),
               "cells permanently dropped (no backpressure), by fabric"),
    MetricInfo("flows.cells_blocked", "counter", ("fabric",),
               "cells blocked awaiting their slot (rotor), by fabric"),
    MetricInfo("flows.cells_faulted", "counter", ("fabric",),
               "cells garbled at a flaky input pin, by fabric"),
    MetricInfo("flows.cycles", "counter", ("fabric",),
               "fabric cycles executed by FlowSim.run, by fabric"),
    MetricInfo("flows.events", "counter", ("fabric",),
               "queue events popped by FlowSim.run, by fabric"),
    MetricInfo("flows.run", "span", (),
               "one FlowSim.run call (meta: fabric, flows)"),
    MetricInfo("flows.compare", "span", (),
               "one head-to-head fabric study (meta: fabrics, n)"),
    MetricInfo("flows.queue_depth", "series", ("fabric",),
               "per-cycle cells held inside the fabric stage, by fabric"),
    MetricInfo("flows.inflight_cells", "series", ("fabric",),
               "per-cycle cells the simulator has handed to the fabric "
               "but not yet seen delivered, by fabric"),
    MetricInfo("flows.cwnd_mean", "series", ("fabric",),
               "per-cycle mean AIMD congestion window across flows"),
    MetricInfo("flows.delivery_rate", "series", ("fabric",),
               "cells delivered per fabric cycle, by fabric"),
    MetricInfo("flows.drop_rate", "series", ("fabric",),
               "cells dropped per fabric cycle (no backpressure), by fabric"),
    MetricInfo("flows.fifo_depth", "series", ("fabric",),
               "per-cycle total knockout egress-FIFO occupancy"),
    # network/knockout
    MetricInfo("knockout.offered", "counter", (),
               "packets offered to the knockout switch"),
    MetricInfo("knockout.knocked_out", "counter", (),
               "packets lost in an output concentrator (arrivals > L)"),
    MetricInfo("knockout.buffer_overflow", "counter", (),
               "packets lost to a full output FIFO"),
    MetricInfo("knockout.delivered", "counter", (),
               "packets leaving on an output line"),
    MetricInfo("knockout.config", "span", (),
               "one (load, L) cell of knockout_loss_curve (meta: load, L)"),
    # messages/congestion
    MetricInfo("congestion.dropped", "counter", ("policy",),
               "messages a congestion policy declared lost"),
    MetricInfo("congestion.retried", "counter", ("policy",),
               "messages a congestion policy queued for retry"),
    MetricInfo("congestion.expired", "counter", ("policy",),
               "TTL expiries (sub-count of congestion.dropped)"),
    MetricInfo("congestion.queue_depth", "series", ("policy",),
               "per-round input-buffer depth of BufferPolicy"),
    MetricInfo("congestion.inflight", "series", ("policy",),
               "per-round messages waiting out a RetryPolicy backoff"),
    # faults/
    MetricInfo("faults.injected", "counter", ("kind",),
               "faults compiled into a FaultySwitch, by fault kind"),
    MetricInfo("faults.scenarios", "counter", (),
               "fault scenarios measured by measure_scenario"),
    MetricInfo("faults.measure", "span", (),
               "one scenario degradation measurement (meta: scenario, "
               "faults, trials)"),
    MetricInfo("faults.sweep", "span", (),
               "one full fault campaign (meta: design, chains, trials)"),
    # messages/serial_sim + clock
    MetricInfo("serial.transits", "counter", (),
               "bit-serial message-set transits simulated"),
    MetricInfo("serial.cycles", "counter", (),
               "clock cycles streamed (setup cycle + one per payload bit)"),
    MetricInfo("serial.transit_cycles", "histogram", (),
               "cycles per transit (payload length + 1)"),
    MetricInfo("serial.transit", "span", (),
               "one BitSerialSimulator.transit call"),
    MetricInfo("pipeline.waves", "counter", (),
               "message waves driven by WavePipeline.run"),
    # gates/event_sim
    MetricInfo("gates.transitions", "counter", (),
               "input transitions simulated by EventSimulator"),
    MetricInfo("gates.wire_events", "counter", (),
               "wire value changes propagated during settling"),
    MetricInfo("gates.settle_time", "histogram", (),
               "settle time (gate delays) per input transition"),
    MetricInfo("gates.glitches", "histogram", (),
               "glitch count (extra transitions) per input transition"),
    # verify/
    MetricInfo("verify.patterns", "counter", ("design",),
               "valid-bit patterns enumerated by the certifier, by design"),
    MetricInfo("verify.violations", "counter", ("design", "check"),
               "contract/parity/metamorphic violations found, by design and check"),
    MetricInfo("verify.certify", "span", (),
               "one certify_switch run (meta: design, n, m)"),
    # obs/perf (the performance observatory, see docs/performance.md)
    MetricInfo("bench.repeat", "span", (),
               "one timed repeat of a bench spec (meta: bench, repeat)"),
    MetricInfo("trace.run", "span", (),
               "the traced workload of 'repro obs trace' (meta: switch, trials)"),
    # obs/live (the live telemetry pipeline, see docs/observability.md)
    MetricInfo("proc.rss_kb", "gauge", (),
               "resident set size of the process, KiB (resource sampler)"),
    MetricInfo("proc.cpu_s", "gauge", (),
               "cumulative user+system CPU seconds (resource sampler)"),
    MetricInfo("proc.gc_collections", "gauge", (),
               "total Python GC collections across generations"),
    MetricInfo("obs.heartbeats", "counter", (),
               "resource-sampler heartbeats emitted this run"),
    MetricInfo("obs.workers_merged", "counter", ("worker",),
               "worker registry snapshots merged into this registry"),
)

#: Derived timing histograms: every span also fills ``<name>.seconds``.
SPAN_SECONDS_SUFFIX = ".seconds"


def metric_names() -> list[str]:
    return [m.name for m in CATALOG]


def catalog_rows() -> list[dict[str, str]]:
    """Catalog as table rows for the CLI / reports."""
    return [
        {
            "metric": m.name,
            "kind": m.kind,
            "labels": ",".join(m.labels) or "-",
            "description": m.description,
        }
        for m in CATALOG
    ]
