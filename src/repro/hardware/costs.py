"""Table 1 resource-measure calculator.

Table 1 of the paper compares the Revsort-based switch against the
Columnsort-based switch at β ∈ {1/2, 5/8, 3/4} on five resource
measures: pins per chip, chip count, load ratio, gate delays, volume.
:func:`table1` computes those measures for concrete instances; the
bench fits exponents across an n-sweep to check the Θ(n^x) claims.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.chip import BarrelShifterChip, HyperconcentratorChip
from repro.hardware.package import (
    columnsort_packaging_3d,
    revsort_packaging_3d,
)
from repro.switches.columnsort_switch import ColumnsortSwitch
from repro.switches.revsort_switch import RevsortSwitch

#: The β sample points of Table 1.
TABLE1_BETAS = (0.5, 0.625, 0.75)


@dataclass(frozen=True)
class ResourceMeasures:
    """One column of Table 1 for a concrete switch instance."""

    label: str
    n: int
    m: int
    pins_per_chip: int
    chip_count: int
    epsilon: int
    load_ratio: float
    gate_delays: int
    volume: int

    def as_row(self) -> dict[str, object]:
        return {
            "switch": self.label,
            "n": self.n,
            "m": self.m,
            "pins/chip": self.pins_per_chip,
            "chips": self.chip_count,
            "epsilon": self.epsilon,
            "load ratio": round(self.load_ratio, 4),
            "gate delays": self.gate_delays,
            "volume": self.volume,
        }


def revsort_measures(n: int, m: int) -> ResourceMeasures:
    """Table 1, Revsort column, for a concrete (n, m)."""
    switch = RevsortSwitch(n, m)
    packaging = revsort_packaging_3d(switch)
    barrel = BarrelShifterChip(switch.side)
    return ResourceMeasures(
        label="Revsort",
        n=n,
        m=m,
        pins_per_chip=max(HyperconcentratorChip(switch.side).data_pins, barrel.data_pins),
        chip_count=switch.chip_count,
        epsilon=switch.epsilon_bound,
        load_ratio=switch.spec.alpha,
        gate_delays=switch.gate_delays,
        volume=packaging.volume,
    )


def columnsort_measures(n: int, m: int, beta: float) -> ResourceMeasures:
    """Table 1, Columnsort column at the given β, for a concrete (n, m)."""
    switch = ColumnsortSwitch.from_beta(n, beta, m)
    packaging = columnsort_packaging_3d(switch)
    return ResourceMeasures(
        label=f"Columnsort b={beta:g}",
        n=n,
        m=m,
        pins_per_chip=HyperconcentratorChip(switch.r).data_pins,
        chip_count=switch.chip_count,
        epsilon=switch.epsilon_bound,
        load_ratio=switch.spec.alpha,
        gate_delays=switch.gate_delays,
        volume=packaging.volume,
    )


def table1(n: int, m: int, betas: tuple[float, ...] = TABLE1_BETAS) -> list[ResourceMeasures]:
    """All Table 1 columns for a concrete (n, m): Revsort plus one
    Columnsort instance per β sample point."""
    rows = [revsort_measures(n, m)]
    rows.extend(columnsort_measures(n, m, beta) for beta in betas)
    return rows


#: Paper-claimed asymptotic exponents (power of n) per Table 1 measure,
#: used by the bench to compare fitted slopes.  Load ratio is expressed
#: via ε = Θ(n^x): the table's ``1 − O(n^x/m)`` entries.
TABLE1_CLAIMED_EXPONENTS = {
    "Revsort": {"pins": 0.5, "chips": 0.5, "epsilon": 0.75, "volume": 1.5},
    "Columnsort b=0.5": {"pins": 0.5, "chips": 0.5, "epsilon": 1.0, "volume": 1.5},
    "Columnsort b=0.625": {"pins": 0.625, "chips": 0.375, "epsilon": 0.75, "volume": 1.625},
    "Columnsort b=0.75": {"pins": 0.75, "chips": 0.25, "epsilon": 0.5, "volume": 1.75},
}

#: Paper-claimed gate-delay slopes (coefficient of lg n).
TABLE1_CLAIMED_DELAY_SLOPES = {
    "Revsort": 3.0,
    "Columnsort b=0.5": 2.0,
    "Columnsort b=0.625": 2.5,
    "Columnsort b=0.75": 3.0,
}
