"""Deterministic 2-D floorplans for the switch layouts of Figures 3/6.

Places every chip and crossbar wiring channel of the 2-D layouts on an
integer grid: stages become columns of chips, with an ``n × n``
crossbar channel between consecutive stages.  The resulting geometry
reproduces the figures' area arithmetic (crossbar channels dominate)
and can be rendered as ASCII art for documentation.

Coordinates: x grows left→right through the pipeline, y top→bottom
across the wires.  All rectangles are axis-aligned, non-overlapping,
and the bounding-box area is the layout's 2-D area.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.switches.columnsort_switch import ColumnsortSwitch
from repro.switches.revsort_switch import RevsortSwitch


@dataclass(frozen=True)
class Rect:
    """An axis-aligned placement: [x, x+w) × [y, y+h)."""

    name: str
    kind: str  # "chip" | "crossbar"
    x: int
    y: int
    w: int
    h: int

    @property
    def area(self) -> int:
        return self.w * self.h

    def overlaps(self, other: "Rect") -> bool:
        return not (
            self.x + self.w <= other.x
            or other.x + other.w <= self.x
            or self.y + self.h <= other.y
            or other.y + other.h <= self.y
        )


@dataclass(frozen=True)
class Floorplan:
    """A placed 2-D layout."""

    rects: tuple[Rect, ...]

    @property
    def width(self) -> int:
        return max((r.x + r.w for r in self.rects), default=0)

    @property
    def height(self) -> int:
        return max((r.y + r.h for r in self.rects), default=0)

    @property
    def bounding_area(self) -> int:
        return self.width * self.height

    @property
    def chip_area(self) -> int:
        return sum(r.area for r in self.rects if r.kind == "chip")

    @property
    def crossbar_area(self) -> int:
        return sum(r.area for r in self.rects if r.kind == "crossbar")

    def validate(self) -> None:
        """No two placements may overlap."""
        rects = self.rects
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                if rects[i].overlaps(rects[j]):
                    raise ConfigurationError(
                        f"floorplan overlap: {rects[i].name} and {rects[j].name}"
                    )

    def ascii_art(self, scale: int = 8) -> str:
        """Coarse ASCII rendering (one character per ``scale`` units).
        Chips render as their stage digit, crossbars as ``#``."""
        cols = max(1, -(-self.width // scale))
        rows = max(1, -(-self.height // scale))
        grid = [["." for _ in range(cols)] for _ in range(rows)]
        for rect in self.rects:
            mark = "#" if rect.kind == "crossbar" else rect.name[1]
            for y in range(rect.y // scale, min(rows, -(-(rect.y + rect.h) // scale))):
                for x in range(
                    rect.x // scale, min(cols, -(-(rect.x + rect.w) // scale))
                ):
                    grid[y][x] = mark
        return "\n".join("".join(row) for row in grid)


def _pipeline_floorplan(
    stage_chip_counts: list[int], chip_side: int, n: int
) -> Floorplan:
    """Generic pipeline: columns of square chips separated by n×n
    crossbar channels."""
    rects: list[Rect] = []
    x = 0
    for stage, count in enumerate(stage_chip_counts):
        # Chips stacked vertically, evenly spaced over the n wires.
        pitch = max(chip_side, n // max(count, 1))
        for c in range(count):
            rects.append(
                Rect(
                    name=f"s{stage}c{c}",
                    kind="chip",
                    x=x,
                    y=c * pitch,
                    w=chip_side,
                    h=chip_side,
                )
            )
        x += chip_side
        if stage + 1 < len(stage_chip_counts):
            rects.append(
                Rect(name=f"x{stage}", kind="crossbar", x=x, y=0, w=n, h=n)
            )
            x += n
    return Floorplan(rects=tuple(rects))


def revsort_floorplan(switch: RevsortSwitch) -> Floorplan:
    """Figure 3's geometry: three columns of √n chips with two n×n
    crossbar channels."""
    side = switch.side
    plan = _pipeline_floorplan([side, side, side], chip_side=side, n=switch.n)
    plan.validate()
    return plan


def columnsort_floorplan(switch: ColumnsortSwitch) -> Floorplan:
    """Figure 6's geometry: two columns of s chips (r-by-r each) with
    one n×n crossbar channel."""
    plan = _pipeline_floorplan(
        [switch.s, switch.s], chip_side=switch.r, n=switch.n
    )
    plan.validate()
    return plan
