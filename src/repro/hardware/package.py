"""2-D layouts and 3-D packagings of the two multichip switches.

Reproduces the packaging arithmetic of the paper:

* **Figure 3 / Section 4** — 2-D Revsort layout: ``3√n`` chips in three
  columns with ``n × n`` crossbar wiring between stages; the Θ(n²)
  crossbars dominate the Θ(n^{3/2}) of chip area.
* **Figure 4** — 3-D Revsort packaging: three stacks of ``√n`` boards;
  stage-2 boards add a barrel shifter; two board types; Θ(n^{3/2})
  volume.
* **Figure 6 / Section 5** — 2-D Columnsort layout: ``2s`` chips with
  ``n × n`` crossbar wiring, O(n²) area.
* **Figure 7** — 3-D Columnsort packaging: two stacks of ``s`` boards
  (one r-by-r chip each plus O(r²) permutation wiring); ``s²``
  wiring-only interstack connectors, each transposing ``r/s`` wires in
  Θ((r/s)²) volume (**Figure 8**); Θ(n^{1+β}) total volume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.board import Board, Stack
from repro.hardware.chip import BarrelShifterChip, HyperconcentratorChip
from repro.switches.columnsort_switch import ColumnsortSwitch
from repro.switches.revsort_switch import RevsortSwitch


@dataclass(frozen=True)
class InterstackConnector:
    """Figure 8: ``w`` wires transposed from vertical to horizontal
    alignment in Θ(w²) volume, wiring only (no active components)."""

    wires: int

    def __post_init__(self) -> None:
        if self.wires < 1:
            raise ConfigurationError(f"connector needs >= 1 wire, got {self.wires}")

    @property
    def volume(self) -> int:
        return self.wires * self.wires


@dataclass(frozen=True)
class Layout2D:
    """A 2-D layout summary: chips plus crossbar wiring."""

    chip_count: int
    chip_area: int
    crossbar_count: int
    crossbar_area: int

    @property
    def area(self) -> int:
        return self.chip_area + self.crossbar_area


@dataclass(frozen=True)
class Packaging3D:
    """A 3-D packaging summary.

    Interstack connectors are all identical (Figure 8 parts), so they
    are stored as one exemplar plus a count — a Columnsort switch at
    large β can need millions of them.
    """

    stacks: tuple[Stack, ...]
    connector: InterstackConnector | None = None
    connector_count: int = 0

    @property
    def connector_volume(self) -> int:
        if self.connector is None:
            return 0
        return self.connector_count * self.connector.volume

    @property
    def volume(self) -> int:
        return sum(s.volume for s in self.stacks) + self.connector_volume

    @property
    def board_count(self) -> int:
        return sum(s.board_count for s in self.stacks)

    @property
    def chip_count(self) -> int:
        return sum(s.chip_count for s in self.stacks)

    def board_types(self) -> set[str]:
        types: set[str] = set()
        for s in self.stacks:
            types |= s.board_types()
        return types


# ---------------------------------------------------------------------------
# Revsort switch packagings (Section 4)
# ---------------------------------------------------------------------------


def revsort_layout_2d(switch: RevsortSwitch) -> Layout2D:
    """Figure 3: three columns of √n chips, two n×n crossbars."""
    chip = HyperconcentratorChip(switch.side)
    chips = switch.chip_count
    crossbars = switch.STAGES - 1
    return Layout2D(
        chip_count=chips,
        chip_area=chips * chip.area,
        crossbar_count=crossbars,
        crossbar_area=crossbars * switch.n * switch.n,
    )


def revsort_packaging_3d(switch: RevsortSwitch) -> Packaging3D:
    """Figure 4: three stacks of √n boards; stage-2 boards carry a
    hyperconcentrator chip *and* a hardwired barrel shifter."""
    side = switch.side
    hyper = HyperconcentratorChip(side)
    barrel = BarrelShifterChip(side)

    plain = Board("hyper-only", (hyper.area,))
    shifted = Board("hyper+barrel", (hyper.area, barrel.area))

    stacks = (
        Stack("stage1", [plain] * side),
        Stack("stage2", [shifted] * side),
        Stack("stage3", [plain] * side),
    )
    return Packaging3D(stacks=stacks)


# ---------------------------------------------------------------------------
# Columnsort switch packagings (Section 5)
# ---------------------------------------------------------------------------


def columnsort_layout_2d(switch: ColumnsortSwitch) -> Layout2D:
    """Figure 6: two columns of s chips, one n×n crossbar."""
    chip = HyperconcentratorChip(switch.r)
    chips = switch.chip_count
    return Layout2D(
        chip_count=chips,
        chip_area=chips * chip.area,
        crossbar_count=1,
        crossbar_area=switch.n * switch.n,
    )


def columnsort_packaging_3d(switch: ColumnsortSwitch) -> Packaging3D:
    """Figure 7: two stacks of s boards (one r-by-r chip plus O(r²)
    permutation wiring each) and s² interstack connectors of r/s wires
    each (Figure 8)."""
    r, s = switch.r, switch.s
    chip = HyperconcentratorChip(r)
    board = Board("hyper+perm", (chip.area,), wiring_area=chip.area)
    stacks = (
        Stack("stage1", [board] * s),
        Stack("stage2", [board] * s),
    )
    return Packaging3D(
        stacks=stacks,
        connector=InterstackConnector(max(1, r // s)),
        connector_count=s * s,
    )
