"""Hardware cost and packaging models.

The paper's evaluation (Table 1, Figures 3–4 and 6–8) is stated in
terms of chip/board/stack inventories: data pins per chip, chip counts,
2-D layout area, 3-D packaging volume, and gate delays.  This package
computes those quantities from the switch constructions so the benches
can regenerate Table 1 and the packaging claims.

Units: areas are in crosspoint-cell units (a ``w``-by-``w``
hyperconcentrator chip has area ``w²``), board thickness is 1, so a
stack's volume equals the sum of its board areas.
"""

from repro.hardware.board import Board, Stack
from repro.hardware.chip import BarrelShifterChip, HyperconcentratorChip
from repro.hardware.costs import (
    ResourceMeasures,
    columnsort_measures,
    revsort_measures,
    table1,
)
from repro.hardware.floorplan import (
    Floorplan,
    Rect,
    columnsort_floorplan,
    revsort_floorplan,
)
from repro.hardware.partition import (
    PartitionPlan,
    columnsort_partition,
    monolithic_partition,
    partition_comparison,
    revsort_partition,
)
from repro.hardware.package import (
    InterstackConnector,
    columnsort_layout_2d,
    columnsort_packaging_3d,
    revsort_layout_2d,
    revsort_packaging_3d,
)

__all__ = [
    "BarrelShifterChip",
    "Floorplan",
    "Rect",
    "columnsort_floorplan",
    "revsort_floorplan",
    "PartitionPlan",
    "columnsort_partition",
    "monolithic_partition",
    "partition_comparison",
    "revsort_partition",
    "Board",
    "HyperconcentratorChip",
    "InterstackConnector",
    "ResourceMeasures",
    "Stack",
    "columnsort_layout_2d",
    "columnsort_measures",
    "columnsort_packaging_3d",
    "revsort_layout_2d",
    "revsort_measures",
    "revsort_packaging_3d",
    "table1",
]
