"""Chip-partitioning cost model (the Section 1 motivation).

"Partitioning this hyperconcentrator switch among multiple chips with
p pins each requires Ω((n/p)²) chips, since each p-pin chip has area
O(p²) and there are Θ(n²) components to partition."  And, for the
partial concentrators: "given chips with p pins, we can partition
n-input partial concentrator switches using only Θ(n/p) chips."

This module turns those two sentences into a calculator so the benches
can regenerate the motivating comparison: the chip counts of

* naively partitioning the monolithic Θ(n²) crossbar,
* the Revsort switch (p = Θ(√n) pins fixed by the design),
* the Columnsort switch at the β matching a given pin budget,

as a function of the pin budget p.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro._util.bits import ceil_div, ilg
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PartitionPlan:
    """Outcome of partitioning a switch across p-pin chips."""

    strategy: str
    n: int
    pin_budget: int
    chips: int
    pins_used_per_chip: int
    note: str = ""


def monolithic_partition(n: int, pin_budget: int) -> PartitionPlan:
    """Naive partition of the Θ(n²)-component crossbar hyperconcentrator
    across p-pin chips: area O(p²) per chip ⇒ ≥ (n/p)² chips, and the
    chip count is also wire-limited to ≥ 2n/p (every input and output
    must cross some chip boundary)."""
    if pin_budget < 4:
        raise ConfigurationError("need at least 4 pins per chip")
    area_limited = ceil_div(n, pin_budget) ** 2
    wire_limited = ceil_div(2 * n, pin_budget)
    return PartitionPlan(
        strategy="monolithic crossbar",
        n=n,
        pin_budget=pin_budget,
        chips=max(area_limited, wire_limited, 1),
        pins_used_per_chip=pin_budget,
        note="Omega((n/p)^2) area-limited",
    )


def revsort_partition(n: int, pin_budget: int) -> PartitionPlan | None:
    """The Revsort switch needs ``2√n + ⌈(lg n)/2⌉`` pins; feasible only
    when the budget covers that (its chip size is fixed by the design).
    Returns None when infeasible."""
    side = math.isqrt(n)
    if side * side != n:
        raise ConfigurationError(f"Revsort needs square n, got {n}")
    needed = 2 * side + (ilg(side) if side > 1 else 0)
    if needed > pin_budget:
        return None
    return PartitionPlan(
        strategy="Revsort switch",
        n=n,
        pin_budget=pin_budget,
        chips=3 * side,
        pins_used_per_chip=needed,
        note="Theta(sqrt(n)) chips",
    )


def columnsort_partition(n: int, pin_budget: int) -> PartitionPlan | None:
    """The best Columnsort switch under the budget: the largest
    power-of-two chip size r with ``2r ≤ p`` (larger r ⇒ better load
    ratio); chips = 2s = 2n/r.  None when even r = s = √n is too big.
    """
    ilg(n)
    r = 1
    while 2 * (r * 2) <= pin_budget and (r * 2) <= n:
        r *= 2
    s = n // r
    if s > r:  # paper requires s | r with r >= s
        return None
    return PartitionPlan(
        strategy="Columnsort switch",
        n=n,
        pin_budget=pin_budget,
        chips=2 * s,
        pins_used_per_chip=2 * r,
        note=f"beta={math.log2(r) / math.log2(n):.3f}",
    )


def partition_comparison(n: int, pin_budgets: list[int]) -> list[dict[str, object]]:
    """The Section 1 comparison table across pin budgets."""
    rows: list[dict[str, object]] = []
    for p in pin_budgets:
        mono = monolithic_partition(n, p)
        rev = revsort_partition(n, p)
        col = columnsort_partition(n, p)
        rows.append(
            {
                "pin budget p": p,
                "monolithic chips": mono.chips,
                "Revsort chips": rev.chips if rev else "(needs more pins)",
                "Columnsort chips": col.chips if col else "(infeasible)",
                "n/p": ceil_div(n, p),
            }
        )
    return rows
