"""Chip-level cost models.

Two chip types appear in the paper's constructions:

* the ``w``-by-``w`` hyperconcentrator chip — ``2w`` data pins, Θ(w²)
  area, ``2⌈lg w⌉ + O(1)`` gate delays;
* the ``w``-bit barrel shifter with hardwired control — ``2w`` data
  pins plus ``⌈lg w⌉`` control pins, O(1) gate delays once hardwired.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util.bits import ceil_lg
from repro.errors import ConfigurationError
from repro.switches.hyperconcentrator import PAD_DELAY


@dataclass(frozen=True)
class HyperconcentratorChip:
    """Packaged w-by-w hyperconcentrator chip."""

    size: int

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ConfigurationError(f"chip size must be positive, got {self.size}")

    @property
    def data_pins(self) -> int:
        return 2 * self.size

    @property
    def pins(self) -> int:
        """Data pins plus setup-control and power pins (constant)."""
        return self.data_pins + 3  # setup signal, power, ground

    @property
    def area(self) -> int:
        """Θ(w²) regular crosspoint layout."""
        return self.size * self.size

    @property
    def gate_delays(self) -> int:
        """``2⌈lg w⌉`` plus I/O pad circuitry."""
        return (2 * ceil_lg(self.size) if self.size > 1 else 0) + PAD_DELAY


@dataclass(frozen=True)
class BarrelShifterChip:
    """Packaged w-bit barrel shifter; control bits hardwired after
    fabrication (Section 4)."""

    size: int

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ConfigurationError(f"chip size must be positive, got {self.size}")

    @property
    def control_bits(self) -> int:
        return ceil_lg(self.size) if self.size > 1 else 0

    @property
    def data_pins(self) -> int:
        """``2w + ⌈lg w⌉``: the paper counts the hardwired control bits
        among the data pins (its ``2√n + ⌈(lg n)/2⌉`` figure)."""
        return 2 * self.size + self.control_bits

    @property
    def pins(self) -> int:
        return self.data_pins + 2  # power, ground

    @property
    def area(self) -> int:
        """Θ(w·lg w) mux array."""
        return self.size * max(self.control_bits, 1)

    @property
    def gate_delays(self) -> int:
        """Constant: the shift amount never changes."""
        return 1
