"""Reliability modelling for the multichip switches.

A multichip design trades pins and volume against *part count*, and
part count drives field reliability: under the standard
independent-failure model (the rare-event approximation — the system
fails if any part fails), the system failure rate is the sum of part
failure rates.  This module attaches that model to the paper's
designs so the Table 1 tradeoff can be read in MTBF terms as well:
more, smaller chips (low β) are cheaper per chip but multiply the
part count.

Rates are relative: one "unit" is the failure rate of a reference
chip of area 1; a chip of area A has rate ``A^area_exponent`` (larger
dies fail more, sublinearly by default), solder/connector joints add a
per-pin term.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.chip import BarrelShifterChip, HyperconcentratorChip
from repro.switches.columnsort_switch import ColumnsortSwitch
from repro.switches.revsort_switch import RevsortSwitch


@dataclass(frozen=True)
class ReliabilityModel:
    """Relative failure-rate model.

    ``chip_base``: rate of a unit-area chip; ``area_exponent``: die
    rate scales as area^e (0 ≤ e ≤ 1; defects ∝ area gives e = 1,
    burn-in screening flattens it); ``pin_rate``: per soldered pin.
    """

    chip_base: float = 1.0
    area_exponent: float = 0.5
    pin_rate: float = 0.05

    def __post_init__(self) -> None:
        if self.chip_base <= 0 or self.pin_rate < 0:
            raise ConfigurationError("rates must be positive")
        if not 0.0 <= self.area_exponent <= 1.0:
            raise ConfigurationError("area_exponent must be in [0, 1]")

    def chip_rate(self, area: int, pins: int) -> float:
        """Relative failure rate of one packaged chip."""
        if area < 1 or pins < 0:
            raise ConfigurationError("area must be >= 1, pins >= 0")
        return self.chip_base * (area**self.area_exponent) + self.pin_rate * pins


@dataclass(frozen=True)
class SystemReliability:
    """Summed relative failure rate of a switch's parts."""

    label: str
    chips: int
    chip_rate_total: float
    pin_joints: int

    @property
    def system_rate(self) -> float:
        return self.chip_rate_total

    @property
    def relative_mtbf(self) -> float:
        """1 / rate — the comparison number (bigger = better)."""
        return 1.0 / self.system_rate if self.system_rate > 0 else float("inf")


def revsort_reliability(
    n: int, model: ReliabilityModel | None = None
) -> SystemReliability:
    """Failure-rate roll-up for the Revsort switch's 3√n chips + √n
    barrel shifters."""
    model = model or ReliabilityModel()
    switch = RevsortSwitch(n, max(1, n // 2))
    hyper = HyperconcentratorChip(switch.side)
    barrel = BarrelShifterChip(switch.side)
    total = 3 * switch.side * model.chip_rate(hyper.area, hyper.pins)
    total += switch.side * model.chip_rate(barrel.area, barrel.pins)
    pins = 3 * switch.side * hyper.pins + switch.side * barrel.pins
    return SystemReliability(
        label=f"Revsort n={n}",
        chips=4 * switch.side,
        chip_rate_total=total,
        pin_joints=pins,
    )


def columnsort_reliability(
    n: int, beta: float, model: ReliabilityModel | None = None
) -> SystemReliability:
    """Failure-rate roll-up for the Columnsort switch's 2s chips."""
    model = model or ReliabilityModel()
    switch = ColumnsortSwitch.from_beta(n, beta, max(1, n // 2))
    chip = HyperconcentratorChip(switch.r)
    total = switch.chip_count * model.chip_rate(chip.area, chip.pins)
    return SystemReliability(
        label=f"Columnsort n={n} b={beta:g}",
        chips=switch.chip_count,
        chip_rate_total=total,
        pin_joints=switch.chip_count * chip.pins,
    )


def monolithic_reliability(
    n: int, model: ReliabilityModel | None = None
) -> SystemReliability:
    """The single Θ(n²)-area chip, for contrast (one huge die)."""
    model = model or ReliabilityModel()
    chip = HyperconcentratorChip(n)
    return SystemReliability(
        label=f"monolithic n={n}",
        chips=1,
        chip_rate_total=model.chip_rate(chip.area, chip.pins),
        pin_joints=chip.pins,
    )
