"""Boards and stacks for the 3-D packagings (Figures 4 and 7).

A board carries one or more chips plus fixed permutation wiring; its
area is the sum of its parts.  A stack is a pile of boards (thickness
1 each), so its volume equals the total board area.  Board *types*
matter to the paper ("we use only two board types"), so boards carry a
type label and stacks can report their type inventory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Board:
    """One circuit board: a type label, chip areas, and wiring area."""

    board_type: str
    chip_areas: tuple[int, ...]
    wiring_area: int = 0

    def __post_init__(self) -> None:
        if any(a < 0 for a in self.chip_areas) or self.wiring_area < 0:
            raise ConfigurationError("areas must be non-negative")

    @property
    def area(self) -> int:
        return sum(self.chip_areas) + self.wiring_area

    @property
    def chip_count(self) -> int:
        return len(self.chip_areas)


@dataclass
class Stack:
    """A pile of boards; volume = total board area (unit thickness)."""

    name: str
    boards: list[Board] = field(default_factory=list)

    @property
    def board_count(self) -> int:
        return len(self.boards)

    @property
    def chip_count(self) -> int:
        return sum(b.chip_count for b in self.boards)

    @property
    def volume(self) -> int:
        return sum(b.area for b in self.boards)

    def board_types(self) -> set[str]:
        return {b.board_type for b in self.boards}
