"""Exception hierarchy for the ``repro`` package.

All library-specific failures derive from :class:`ReproError` so callers
can catch one base class.  Configuration problems (bad switch sizes,
non-power-of-two inputs, invalid Columnsort shapes) raise
:class:`ConfigurationError`; violations of a switch's behavioural
contract detected at runtime raise :class:`ConcentrationError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError, ValueError):
    """A switch, mesh, or circuit was constructed with invalid parameters.

    Examples: a Revsort switch whose ``n`` is not an even power of two, a
    Columnsort switch whose ``s`` does not divide ``r``, or a partial
    concentrator with ``m > n``.
    """


class FaultInjectionError(ConfigurationError):
    """A fault scenario cannot be applied to the targeted switch.

    Examples: a dead-chip fault naming a stage the design does not
    have, an interior (mid-flight) fault on a switch without a compiled
    stage plan, or a stuck-at fault on a wire position outside the
    switch.  Subclasses :class:`ConfigurationError`, so the CLI maps it
    to exit code 2 like every other configuration problem.
    """


class ExecutionError(ReproError, RuntimeError):
    """The execution stack itself failed — not the switch under test.

    Raised by the shard supervisor when a shard exhausts its retry
    budget (repeated worker deaths, deadline expiries, or transient
    exceptions) and graceful degradation is disabled or also failed.
    Distinct from a contract violation (the design is fine, the run
    infrastructure is not), so the CLI maps it to exit code 3 — neither
    the contract-violation exit 1 nor the configuration exit 2.
    """


class ConcentrationError(ReproError, AssertionError):
    """A switch violated its concentration contract.

    Raised by the validators in :mod:`repro.core.concentration` when a
    routing fails the perfect/partial concentrator property, e.g. a valid
    message was dropped while the switch was lightly loaded.
    """


class RoutingError(ReproError, RuntimeError):
    """An internal routing invariant was violated (non-disjoint paths,
    out-of-range output index, or a message sent through a switch whose
    paths were never set up)."""


class SimulationError(ReproError, RuntimeError):
    """A clocked bit-serial simulation entered an inconsistent state,
    e.g. payload bits arriving before the setup cycle completed."""


class CircuitError(ReproError, ValueError):
    """A gate-level netlist is malformed: combinational cycle, dangling
    wire, duplicate driver, or evaluation of an undriven input."""


def exit_code_for(exc: BaseException) -> int:
    """Map an exception to the CLI's process exit code.

    Contract violations (:class:`ConcentrationError`) exit 1 so CI
    treats them as test failures; execution-stack failures
    (:class:`ExecutionError` — a shard that exhausted its retry budget)
    exit 3 so a wedged pool is never mistaken for either a finding or a
    usage mistake; every other :class:`ReproError` — configuration
    mistakes, routing/simulation/circuit faults — exits 2, the
    conventional usage-error code.  Anything outside the hierarchy is
    an internal error and maps to 70 (BSD ``EX_SOFTWARE``), which is
    also what the flight recorder stamps into crash reports.
    """
    if isinstance(exc, ConcentrationError):
        return 1
    if isinstance(exc, ExecutionError):
        return 3
    if isinstance(exc, ReproError):
        return 2
    return 70
