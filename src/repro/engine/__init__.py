"""repro.engine — batched execution engine.

Three pieces turn the per-trial scalar simulation stack into an
array-at-once engine:

* **compiled stage plans** (:mod:`repro.engine.plan`) — each switch
  design's wiring/comparator/permutation index arrays, built once per
  ``(type, n, m)`` key into an immutable plan held in a process-wide
  :class:`~repro.engine.plan.PlanCache` (hit/miss counters on
  :mod:`repro.obs`);
* **vectorized batch routing** (:mod:`repro.engine.batch`) —
  ``ConcentratorSwitch.setup_batch(valid)`` takes a ``(B, n)`` trial
  array and returns a :class:`~repro.engine.batch.BatchRouting`, with
  every stage executed on 2-D arrays (one row per trial);
* **bit-parallel gate evaluation** —
  :func:`repro.gates.evaluate.evaluate_packed` packs 64 trials per
  ``uint64`` lane and evaluates netlists with bitwise ops.

The scalar paths stay untouched as the correctness oracle; the parity
tests in ``tests/test_engine.py`` pin batch == scalar for every design
in the registry.  See ``docs/performance.md``.
"""

from repro.engine.batch import (
    BatchRouting,
    concentrate_plan_batch,
    hyperconcentrate_batch,
    nearsortedness_batch,
    prefix_ranks_batch,
    run_comparator_plan,
    run_plan,
    run_plan_sparse,
    run_plan_with_faults,
    validate_batch_partial_concentration,
)
from repro.engine.backends import (
    EngineBackend,
    StreamSpec,
    StreamSummary,
    backend_names,
    get_backend,
    register_backend,
    resolve_workers,
)
from repro.engine.plan import (
    PLAN_CACHE,
    ChipLayer,
    ComparatorPlan,
    FixedPermutation,
    PlanCache,
    StagePlan,
    chip_layer,
    comparator_stages,
    fixed_permutation,
    plan_cache,
)

__all__ = [
    "BatchRouting",
    "ChipLayer",
    "ComparatorPlan",
    "EngineBackend",
    "FixedPermutation",
    "PLAN_CACHE",
    "PlanCache",
    "StagePlan",
    "StreamSpec",
    "StreamSummary",
    "backend_names",
    "chip_layer",
    "comparator_stages",
    "concentrate_plan_batch",
    "fixed_permutation",
    "get_backend",
    "hyperconcentrate_batch",
    "nearsortedness_batch",
    "plan_cache",
    "prefix_ranks_batch",
    "register_backend",
    "resolve_workers",
    "run_comparator_plan",
    "run_plan",
    "run_plan_sparse",
    "run_plan_with_faults",
    "validate_batch_partial_concentration",
]
