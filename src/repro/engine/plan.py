"""Compiled stage plans and the process-wide plan cache.

A multichip switch's *structure* — which wire positions feed which
chip, the fixed inter-stage wiring permutations, the comparator pairs
of a sorting network — depends only on the design parameters
``(type, n, m, ...)``, never on the valid bits of a particular setup.
The scalar code paths historically rebuilt (or per-instance cached)
those index arrays; the engine compiles them **once per design key**
into an immutable plan held in a process-wide :class:`PlanCache`, so

* two instances of the same design share one set of wiring arrays, and
* the batched executor (:mod:`repro.engine.batch`) can run thousands
  of trials against the same compiled arrays without reconstruction.

Cache traffic is observable: every lookup increments
``engine.plan_cache.hit`` or ``engine.plan_cache.miss`` (labelled by
design kind) on the installed :mod:`repro.obs` registry.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable

import numpy as np

from repro import obs


def _freeze(arr: np.ndarray) -> np.ndarray:
    """Return a read-only int64 view/copy of ``arr`` (plans are shared
    across instances and threads, so they must be immutable)."""
    out = np.ascontiguousarray(arr, dtype=np.int64)
    if out is arr or out.base is not None:
        out = out.copy()
    out.setflags(write=False)
    return out


@dataclass(frozen=True)
class ChipLayer:
    """One bank of equal-width hyperconcentrator chips.

    ``groups[c, w]`` is the flat wire position wired to chip ``c``'s
    local wire ``w``.  Positions not listed in any group pass through
    unchanged.

    The executor-facing derived tables are int32 (half the memory
    traffic of the int64 ``groups``, which the scalar paths keep using):
    ``flat32[c*width + w] = groups[c, w]`` and its inverse ``cm_of``
    (−1 for positions no chip touches).  ``total_upto`` is the largest
    plan width for which the layer covers *every* position.
    """

    groups: np.ndarray  # (chips, width) int64, read-only
    flat32: np.ndarray  # (chips*width,) int32, read-only
    cm_of: np.ndarray  # (max_pos+1,) int32, read-only inverse
    total_upto: int

    @property
    def n_chips(self) -> int:
        return int(self.groups.shape[0])

    @property
    def chip_width(self) -> int:
        return int(self.groups.shape[1])


@dataclass(frozen=True)
class FixedPermutation:
    """Hardwired pin-to-pin wiring between stages: the content at
    position ``p`` moves to position ``perm[p]``."""

    perm: np.ndarray  # (n,) int64, read-only
    perm32: np.ndarray  # (n,) int32, read-only


PlanOp = ChipLayer | FixedPermutation


@dataclass(frozen=True)
class StagePlan:
    """A compiled switch structure: the op pipeline plus sizes.

    ``ops`` alternates :class:`ChipLayer` and :class:`FixedPermutation`
    entries; running them left to right (see
    :func:`repro.engine.batch.run_plan`) yields each input's final flat
    position, exactly like the scalar ``stage_permutations`` +
    ``compose`` path.
    """

    key: tuple
    n: int
    ops: tuple[PlanOp, ...]


@dataclass(frozen=True)
class ComparatorPlan:
    """A compiled comparator network: per stage, the (hi, lo) wire
    index arrays (``hi`` keeps the larger bit; ties do not exchange)."""

    key: tuple
    n: int
    stages: tuple[tuple[np.ndarray, np.ndarray], ...]


def _freeze32(arr: np.ndarray) -> np.ndarray:
    out = np.ascontiguousarray(arr, dtype=np.int32)
    if out is arr or out.base is not None:
        out = out.copy()
    out.setflags(write=False)
    return out


def chip_layer(groups: list[np.ndarray] | np.ndarray) -> ChipLayer:
    """Build a :class:`ChipLayer` from a group list (all equal width)."""
    stacked = np.stack(list(groups)) if isinstance(groups, list) else groups
    frozen = _freeze(stacked)
    flat = frozen.reshape(-1)
    size = int(flat.max()) + 1 if flat.size else 0
    cm_of = np.full(size, -1, dtype=np.int32)
    cm_of[flat] = np.arange(flat.size, dtype=np.int32)
    uncovered = np.nonzero(cm_of < 0)[0]
    total_upto = int(uncovered[0]) if uncovered.size else size
    return ChipLayer(
        groups=frozen,
        flat32=_freeze32(flat),
        cm_of=_freeze32(cm_of),
        total_upto=total_upto,
    )


def fixed_permutation(perm: np.ndarray) -> FixedPermutation:
    frozen = _freeze(perm)
    return FixedPermutation(perm=frozen, perm32=_freeze32(frozen))


def comparator_stages(
    key: tuple, n: int, stages: list[list[tuple[int, int]]]
) -> ComparatorPlan:
    """Compile a comparator stage list into paired index arrays."""
    compiled = []
    for stage in stages:
        hi = _freeze(np.array([c[0] for c in stage], dtype=np.int64))
        lo = _freeze(np.array([c[1] for c in stage], dtype=np.int64))
        compiled.append((hi, lo))
    return ComparatorPlan(key=key, n=n, stages=tuple(compiled))


#: Callbacks run by :meth:`PlanCache.clear` so derived caches (e.g. the
#: executor's compiled step tables) stay in sync with the plan store.
_CLEAR_HOOKS: list[Callable[[], None]] = []


def _refreeze_plan(plan: object) -> None:
    """Re-apply the read-only flag to a plan's arrays in place (pickle
    round-trips produce writable copies)."""
    if isinstance(plan, StagePlan):
        for op in plan.ops:
            if isinstance(op, ChipLayer):
                for arr in (op.groups, op.flat32, op.cm_of):
                    arr.setflags(write=False)
            elif isinstance(op, FixedPermutation):
                op.perm.setflags(write=False)
                op.perm32.setflags(write=False)
    elif isinstance(plan, ComparatorPlan):
        for hi, lo in plan.stages:
            hi.setflags(write=False)
            lo.setflags(write=False)


class PlanCache:
    """Process-wide cache of compiled plans, keyed by design tuple.

    Keys are ``(kind, *params)`` tuples, e.g. ``("columnsort", r, s)``.
    The cache never stores per-setup state — only wiring structure — so
    sharing an entry between switch instances cannot leak routing
    results between them (the parity tests assert this).
    """

    def __init__(self) -> None:
        self._plans: dict[Hashable, object] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._restored = 0

    def get_or_build(self, key: tuple, builder: Callable[[], object]) -> object:
        kind = key[0] if key else "?"
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._hits += 1
                obs.counter("engine.plan_cache.hit", kind=kind).inc()
                return plan
        # Build outside the lock (builders can be expensive); a
        # concurrent duplicate build is harmless — last write wins and
        # both results are equivalent immutable plans.
        plan = builder()
        with self._lock:
            self._plans.setdefault(key, plan)
            self._misses += 1
            obs.counter("engine.plan_cache.miss", kind=kind).inc()
            return self._plans[key]

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._plans),
                "hits": self._hits,
                "misses": self._misses,
                "restored": self._restored,
            }

    def keys(self) -> set:
        with self._lock:
            return set(self._plans)

    def snapshot(self, keys: Iterable[tuple] | None = None) -> dict:
        """A pure-data, pickle-safe copy of the cache: ``{key: plan}``.

        Plans are immutable dataclasses of read-only numpy arrays, so
        the plan objects themselves are the payload — no per-process
        state (locks, counters, obs handles) rides along.  This is what
        the multiprocess backend ships to warm each worker instead of
        recompiling plans per shard (see
        :meth:`repro.engine.backends.pool.WorkerPool.plan_payload`).
        """
        with self._lock:
            if keys is None:
                return dict(self._plans)
            return {key: self._plans[key] for key in keys if key in self._plans}

    def restore(self, plans: dict) -> int:
        """Install a :meth:`snapshot` payload (e.g. after crossing a
        process boundary) and return how many entries were new.

        Existing entries win — a restore never clobbers a plan the
        process already built — and neither path counts as a hit or a
        miss, so the hit/miss counters keep measuring only real lookup
        traffic.  Arrays are re-frozen: pickling drops the read-only
        flag, and restored plans are shared exactly like built ones.
        """
        installed = 0
        for key, plan in plans.items():
            _refreeze_plan(plan)
            kind = key[0] if key else "?"
            with self._lock:
                if key in self._plans:
                    continue
                self._plans[key] = plan
                self._restored += 1
                installed += 1
            obs.counter("engine.plan_cache.restored", kind=kind).inc()
        return installed

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self._hits = 0
            self._misses = 0
            self._restored = 0
        for hook in _CLEAR_HOOKS:
            hook()

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)


#: The process-wide plan cache every switch shares.
PLAN_CACHE = PlanCache()


def plan_cache() -> PlanCache:
    """The process-wide :class:`PlanCache`."""
    return PLAN_CACHE
