"""Vectorized multi-trial routing: batch results and the plan executor.

One Monte-Carlo trial is one valid-bit vector; the engine runs a whole
``(B, n)`` array of trials through a compiled :class:`~repro.engine.plan.StagePlan`
at once, with every stage operating on 2-D arrays (one row per trial).
``setup_batch`` on :class:`repro.switches.base.ConcentratorSwitch`
returns a :class:`BatchRouting`; indexing it yields ordinary
:class:`~repro.switches.base.Routing` objects, and the scalar ``setup``
path remains the correctness oracle (the parity tests assert
``switch.setup_batch(V)[i] == switch.setup(V[i])`` for every registered
design).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.engine import plan as plan_mod
from repro.engine.plan import ComparatorPlan, FixedPermutation, StagePlan
from repro.errors import ConcentrationError, ConfigurationError


@dataclass(frozen=True)
class BatchRouting:
    """The electrical paths of ``B`` independent setup cycles.

    ``input_to_output[b, i]`` is the output wire carrying input ``i``'s
    message in trial ``b`` (−1 when it has no path) — one
    :class:`~repro.switches.base.Routing` row per trial.
    """

    n_inputs: int
    n_outputs: int
    valid: np.ndarray  # (B, n) bool
    input_to_output: np.ndarray  # (B, n) int64

    def __post_init__(self) -> None:
        if self.valid.ndim != 2 or self.valid.shape[1] != self.n_inputs:
            raise ConfigurationError(
                f"batch valid bits must be (B, {self.n_inputs}), "
                f"got {self.valid.shape}"
            )
        if self.input_to_output.shape != self.valid.shape:
            raise ConfigurationError("batch routing shape mismatch")

    def __len__(self) -> int:
        return int(self.valid.shape[0])

    @property
    def batch_size(self) -> int:
        return len(self)

    def __getitem__(self, index: int):
        """Trial ``index`` as a validated scalar :class:`Routing`."""
        from repro.switches.base import Routing

        return Routing(
            n_inputs=self.n_inputs,
            n_outputs=self.n_outputs,
            valid=self.valid[index],
            input_to_output=self.input_to_output[index],
        )

    @property
    def routed_counts(self) -> np.ndarray:
        """Per-trial number of valid messages with a path, shape (B,)."""
        return ((self.input_to_output >= 0) & self.valid).sum(axis=1)

    @property
    def dropped_counts(self) -> np.ndarray:
        """Per-trial number of valid messages without a path."""
        return ((self.input_to_output < 0) & self.valid).sum(axis=1)

    def output_valid_bits(self) -> np.ndarray:
        """The valid bits as seen on the output wires, shape (B, m)."""
        out = np.zeros((len(self), self.n_outputs), dtype=bool)
        targets = np.where(self.valid, self.input_to_output, -1)
        rows, cols = np.nonzero(targets >= 0)
        out[rows, targets[rows, cols]] = True
        return out


def _rank_dtype(width: int) -> np.dtype:
    """Smallest unsigned/signed dtype holding an inclusive rank ≤ width."""
    if width <= 255:
        return np.dtype(np.uint8)
    if width <= 2**15 - 1:
        return np.dtype(np.int16)
    return np.dtype(np.int32)


# Per-plan compiled executor steps, keyed by plan.key.  Value is either
# (steps, finish) for the fused fast path, or None when the plan has a
# partial chip layer and must use the generic walker.  Built once per
# plan; plain dict mutation is atomic under the GIL and recomputation
# on a race is harmless.  PlanCache.clear() flushes this too (see the
# hook registration below) so stale tables can't outlive their plans.
_STEPS_CACHE: dict[tuple, object] = {}
plan_mod._CLEAR_HOOKS.append(_STEPS_CACHE.clear)


def _compile_steps(plan: StagePlan):
    """Fuse a plan's op list into per-layer static lookup tables.

    The executor tracks each valid input as a coordinate in the
    *chip-major slot space* of the layer it just left (never converting
    back to flat positions between layers).  For each chip layer the
    compiled ``entry`` table maps the previous coordinate space straight
    to this layer's slot — all interleaving fixed permutations and the
    previous layer's slot→position map are folded in at compile time,
    so the runtime does one gather per layer where the naive walk does
    three.  ``finish`` maps the last layer's slot space to final flat
    positions.
    """
    cached = _STEPS_CACHE.get(plan.key, _STEPS_CACHE)
    if cached is not _STEPS_CACHE:
        return cached
    pending = None  # current-coordinate → flat-position table (None = identity)
    steps = []
    compiled: object = None
    for op in plan.ops:
        if isinstance(op, FixedPermutation):
            pending = op.perm32 if pending is None else op.perm32[pending]
            continue
        if op.total_upto < plan.n:
            break  # partial layer: fall back to the generic walker
        entry = op.cm_of if pending is None else op.cm_of[pending]
        width = op.chip_width
        if width & (width - 1) == 0:
            mask = np.int32(~(width - 1))  # chip_start = slot & mask
        else:
            mask = None
        steps.append((entry, op.n_chips, width, _rank_dtype(width), mask))
        pending = op.flat32
    else:
        compiled = (tuple(steps), pending)
    _STEPS_CACHE[plan.key] = compiled
    return compiled


def run_plan_sparse(
    plan: StagePlan, valid: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Execute a compiled stage plan, tracking only the valid inputs.

    Returns ``(rows, cols, pos)``: flat arrays over every valid bit of
    the batch (``valid[rows[t], cols[t]]`` is True) with ``pos[t]`` its
    final flat position.  Only valid inputs matter to a concentrator's
    routing — invalid inputs never get an output — so the executor
    skips the other half of the position bookkeeping entirely.

    A chip layer sends the j-th valid input of each chip (in wire
    order) to the chip's j-th wire.  The rank is a running popcount of
    the chip's current valid bits, computed chip-major over the whole
    batch.  This path is memory-bandwidth-bound, so everything stays in
    the smallest dtype that fits (int32 coordinates, uint8/int16 ranks)
    and plans with only total layers run through per-plan fused lookup
    tables (:func:`_compile_steps`) — one gather per chip layer.
    """
    return _run_plan_sparse_flat(plan, valid)[1:]


def _run_plan_sparse_flat(
    plan: StagePlan, valid: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """As :func:`run_plan_sparse`, but also returns the flat index of
    each tracked entry into ``valid.ravel()`` (for scatter reuse)."""
    batch, n = valid.shape
    flat_idx = np.flatnonzero(valid)
    rows = (flat_idx // n).astype(np.int32)
    cols = flat_idx - rows.astype(np.int64) * n
    row_base: dict[int, np.ndarray] = {}  # rows * slots, per slot count

    def base_for(slots: int) -> np.ndarray:
        base = row_base.get(slots)
        if base is None:
            if batch * slots < 2**31:
                base = rows * np.int32(slots)
            else:  # flat indices exceed int32 — fall back to int64
                base = rows.astype(np.int64) * slots
            row_base[slots] = base
        return base

    compiled = _compile_steps(plan)
    grp = np.zeros((batch, 0), dtype=bool)

    if compiled is not None:
        steps, finish = compiled
        with obs.span(
            "engine.run_plan",
            plan=str(plan.key), batch=batch, valid=int(flat_idx.size),
        ):
            coord = cols.astype(np.int32)  # slot coordinate in the current space
            for layer, (entry, n_chips, width, rank_dt, mask) in enumerate(steps):
                with obs.span(
                    "engine.stage",
                    kind="chip", layer=layer, chips=n_chips, width=width,
                ):
                    slots = n_chips * width
                    if grp.shape[1] != slots:
                        grp = np.zeros((batch, slots), dtype=bool)
                    else:
                        grp[:] = False
                    iv = entry[coord]  # this layer's chip-major slot
                    gf = base_for(slots) + iv  # flat (trial, slot) index, reused
                    grp.reshape(-1)[gf] = True
                    cs = np.cumsum(grp.reshape(batch, n_chips, width), axis=2,
                                   dtype=rank_dt)
                    rank = cs.reshape(-1)[gf]  # 1-based rank among chip's valid
                    if mask is not None:
                        coord = (iv & mask) - np.int32(1) + rank
                    else:
                        coord = (iv // width) * np.int32(width) - np.int32(1) + rank
            pos = coord if finish is None else finish[coord]
        return flat_idx, rows, cols, pos

    # Generic walker: handles plans with partial chip layers, where
    # untouched positions pass through a layer unchanged.
    with obs.span(
        "engine.run_plan",
        plan=str(plan.key), batch=batch, valid=int(flat_idx.size),
    ):
        pos = cols.astype(np.int32)  # current flat position of each valid input
        for layer, op in enumerate(plan.ops):
            if isinstance(op, FixedPermutation):
                with obs.span("engine.stage", kind="perm", layer=layer):
                    pos = op.perm32[pos]
                continue
            width = op.chip_width
            with obs.span(
                "engine.stage",
                kind="chip", layer=layer, chips=op.n_chips, width=width,
            ):
                slots = op.flat32.size
                if grp.shape[1] != slots:
                    grp = np.zeros((batch, slots), dtype=bool)
                else:
                    grp[:] = False
                base = base_for(slots)
                grp_flat = grp.reshape(-1)
                covered = (pos < op.cm_of.size) & (np.take(op.cm_of, pos,
                                                           mode="clip") >= 0)
                iv = np.where(covered, np.take(op.cm_of, pos, mode="clip"), 0)
                gf = base + iv
                grp_flat[gf[covered]] = True
                cs = np.cumsum(grp.reshape(batch, op.n_chips, width), axis=2,
                               dtype=np.int32)
                rank = cs.reshape(-1)[gf] - 1
                chip_start = (iv // width) * np.int32(width)
                pos = np.where(covered, op.flat32[chip_start + rank], pos)
    return flat_idx, rows, cols, pos


def run_plan(plan: StagePlan, valid: np.ndarray) -> np.ndarray:
    """Execute a compiled stage plan on a ``(B, n)`` trial batch.

    Returns ``final`` with ``final[b, i]`` = the flat position input
    ``i`` occupies after the whole pipeline in trial ``b`` — the batched
    equivalent of ``compose(stage_permutations(valid))`` — for the
    *valid* inputs; entries for invalid inputs are unspecified (callers
    always mask them with ``np.where(valid & ..., final, -1)``).
    """
    batch, n = valid.shape
    flat_idx, _, _, pos = _run_plan_sparse_flat(plan, valid)
    final = np.zeros((batch, n), dtype=np.int64)
    final.reshape(-1)[flat_idx] = pos
    return final


def concentrate_plan_batch(
    plan: StagePlan, valid: np.ndarray, m: int
) -> np.ndarray:
    """Routing array for a plan-based partial concentrator: each valid
    input's final position if it lands on one of the first ``m`` wires,
    else −1 (and −1 for every invalid input) — the fused batched form of
    ``np.where(valid & (final < m), final, -1)``."""
    flat_idx, _, _, pos = _run_plan_sparse_flat(plan, valid)
    routing = np.full(valid.shape, -1, dtype=np.int64)
    routing.reshape(-1)[flat_idx] = np.where(pos < m, pos, -1)
    return routing


def run_plan_with_faults(
    plan: StagePlan,
    valid: np.ndarray,
    stage_kills,
) -> np.ndarray:
    """Execute a stage plan with kill masks at chip-layer boundaries.

    ``stage_kills`` has one entry per chip layer, in op order: ``None``
    or an ``(n,)`` bool mask of flat positions whose signal is forced
    invalid immediately after that layer's chips concentrate (i.e. on
    the chip output pins, before the following fixed permutation) —
    the functional model of a severed inter-chip wire or a dead chip.

    Returns ``pos`` with ``pos[b, i]`` = the final flat position of
    input ``i``'s message in trial ``b``, or −1 when the input is
    invalid or its message was killed mid-flight.  Unlike
    :func:`run_plan`, invalid entries are already masked.

    This is a dense walker (it carries the full position→input map
    through every op) rather than the sparse rank-tracking fast path:
    a killed message changes the ranks of every message behind it in
    the same chip, which the fused lookup tables cannot express.
    """
    batch, n = valid.shape
    kills = list(stage_kills)
    n_layers = sum(1 for op in plan.ops if not isinstance(op, FixedPermutation))
    if len(kills) != n_layers:
        raise ConfigurationError(
            f"plan {plan.key} has {n_layers} chip layers but "
            f"{len(kills)} kill masks were supplied"
        )
    # src[b, p] = the input whose message sits on flat position p (−1 idle).
    src = np.where(valid, np.arange(n, dtype=np.int64)[None, :], np.int64(-1))
    layer_i = 0
    with obs.span(
        "engine.run_plan",
        plan=str(plan.key), batch=batch, valid=int(valid.sum()), faulty=True,
    ):
        for layer, op in enumerate(plan.ops):
            if isinstance(op, FixedPermutation):
                with obs.span("engine.stage", kind="perm", layer=layer):
                    moved = np.empty_like(src)
                    moved[:, op.perm] = src
                    src = moved
                continue
            with obs.span(
                "engine.stage",
                kind="chip", layer=layer, chips=op.n_chips, width=op.chip_width,
            ):
                g = src[:, op.groups]  # (B, chips, width)
                # Stable sort each chip's wires by occupancy: occupied
                # wires (in wire order) move to the leading outputs,
                # idle wires (already −1) trail — exactly the chip's
                # concentration semantics.
                order = np.argsort(g < 0, axis=2, kind="stable")
                g = np.take_along_axis(g, order, axis=2)
                out = src.copy()
                out[:, op.groups.reshape(-1)] = g.reshape(batch, -1)
                src = out
            kmask = kills[layer_i]
            layer_i += 1
            if kmask is not None and kmask.any():
                src[:, kmask] = -1
    pos = np.full((batch, n), -1, dtype=np.int64)
    rows, p = np.nonzero(src >= 0)
    pos[rows, src[rows, p]] = p
    return pos


def run_comparator_plan(plan: ComparatorPlan, valid: np.ndarray) -> np.ndarray:
    """Run a compiled comparator network on a ``(B, n)`` batch.

    Returns ``position_of[b, i]`` = the final wire of input ``i`` in
    trial ``b`` (batched :func:`repro.switches.bitonic.apply_comparator_stages`).
    """
    batch, n = valid.shape
    bits = valid.astype(np.int8)
    # wire_holds[b, w] = the input whose message is on wire w.
    wire_holds = np.broadcast_to(np.arange(n, dtype=np.int64), (batch, n)).copy()
    with obs.span("engine.run_plan", plan=str(plan.key), batch=batch,
                  valid=int(valid.sum())):
        for layer, (hi, lo) in enumerate(plan.stages):
            with obs.span("engine.stage", kind="comparator", layer=layer,
                          comparators=int(hi.size)):
                bhi, blo = bits[:, hi], bits[:, lo]
                swap = bhi < blo
                bits[:, hi] = np.where(swap, blo, bhi)
                bits[:, lo] = np.where(swap, bhi, blo)
                whi, wlo = wire_holds[:, hi], wire_holds[:, lo]
                wire_holds[:, hi] = np.where(swap, wlo, whi)
                wire_holds[:, lo] = np.where(swap, whi, wlo)
    position_of = np.empty((batch, n), dtype=np.int64)
    np.put_along_axis(
        position_of,
        wire_holds,
        np.broadcast_to(np.arange(n, dtype=np.int64), (batch, n)).copy(),
        axis=1,
    )
    return position_of


def prefix_ranks_batch(valid: np.ndarray) -> np.ndarray:
    """Batched inclusive popcount prefix: rank (1-based among valid
    inputs) per trial; 0 where invalid."""
    ranks = np.cumsum(valid, axis=1, dtype=np.int64)
    return ranks * valid


def hyperconcentrate_batch(valid: np.ndarray) -> np.ndarray:
    """Batched hyperconcentrator routing: in each trial the t-th valid
    input gets output t; invalid inputs get −1."""
    return np.where(valid, prefix_ranks_batch(valid) - 1, -1)


def nearsortedness_batch(bits: np.ndarray) -> np.ndarray:
    """Per-row ε of a ``(B, n)`` 0/1 array — the vectorized form of
    :func:`repro.core.nearsort.nearsortedness` (the property tests pin
    the two equal row-for-row).

    Returns the exact smallest ε for which each row is ε-nearsorted
    under the paper's per-value notion: ``max(last 1 position − (k−1),
    k − first 0 position, 0)``.
    """
    arr = np.asarray(bits)
    if arr.ndim != 2:
        raise ConfigurationError(
            f"expected a (B, n) bit array, got shape {arr.shape}"
        )
    if arr.dtype != np.bool_ and arr.size and not ((arr == 0) | (arr == 1)).all():
        raise ConfigurationError("sequence must contain only 0/1 values")
    rows = arr.astype(bool)
    n = rows.shape[1]
    k = rows.sum(axis=1).astype(np.int64)
    idx = np.arange(n, dtype=np.int64)
    last_one = np.where(rows, idx, -1).max(axis=1, initial=-1)
    first_zero = np.where(~rows, idx, n).min(axis=1, initial=n)
    eps_one = np.where(last_one >= 0, last_one - (k - 1), 0)
    eps_zero = np.where(first_zero < n, k - first_zero, 0)
    return np.maximum(np.maximum(eps_one, eps_zero), 0)


def validate_batch_partial_concentration(spec, batch: BatchRouting) -> None:
    """Vectorized form of
    :func:`repro.core.concentration.validate_partial_concentration`:
    asserts the (n, m, α) contract for every trial row at once."""
    if batch.n_inputs != spec.n or batch.n_outputs != spec.m:
        raise ConfigurationError(
            f"batch is {batch.n_inputs}->{batch.n_outputs}, "
            f"spec expects {spec.n}->{spec.m}"
        )
    routing = batch.input_to_output
    if routing.size and routing.max() >= spec.m:
        raise ConcentrationError(
            f"routing targets output {int(routing.max())} but the switch "
            f"has {spec.m} outputs"
        )
    if (routing[~batch.valid] >= 0).any():
        raise ConcentrationError("an invalid message was routed to an output")
    # Disjointness per row: no output index repeated within a trial.
    used = np.sort(np.where(routing >= 0, routing, np.iinfo(np.int64).max), axis=1)
    dup = (used[:, 1:] == used[:, :-1]) & (used[:, 1:] != np.iinfo(np.int64).max)
    if dup.any():
        bad = int(np.nonzero(dup.any(axis=1))[0][0])
        raise ConcentrationError(
            f"routing paths are not disjoint in trial {bad} (output reused)"
        )
    k = batch.valid.sum(axis=1)
    routed = batch.routed_counts
    cap = spec.guaranteed_capacity
    light = (k <= cap) & (routed < k)
    if light.any():
        bad = int(np.nonzero(light)[0][0])
        raise ConcentrationError(
            f"lightly loaded switch (trial {bad}, k={int(k[bad])} <= "
            f"alpha*m={cap}) dropped {int(k[bad] - routed[bad])} messages"
        )
    heavy = (k > cap) & (routed < cap)
    if heavy.any():
        bad = int(np.nonzero(heavy)[0][0])
        raise ConcentrationError(
            f"congested switch (trial {bad}, k={int(k[bad])}) routed only "
            f"{int(routed[bad])} < alpha*m={cap} messages"
        )
