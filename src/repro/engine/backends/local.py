"""Single-process backends: the four historical execution paths
wrapped behind the :class:`~repro.engine.backends.base.EngineBackend`
protocol.

* ``scalar`` — the per-trial ``setup`` oracle (slow, definitionally
  correct; what every other path is certified against);
* ``batch`` — the vectorized ``setup_batch`` engine;
* ``packed`` — bit-parallel gate-netlist evaluation (64 trials per
  uint64 lane); occupancy only, n ≤ 16 designs with netlists;
* ``netlist`` — same netlists through the sequential evaluator, one
  trial at a time (the reference the packed path is pinned against).
"""

from __future__ import annotations

import numpy as np

from repro.engine.backends.base import (
    CAP_OCCUPANCY,
    CAP_ROUTING,
    CAP_STREAM,
    EngineBackend,
    register_backend,
)
from repro.errors import ConfigurationError


class ScalarBackend(EngineBackend):
    """The per-trial scalar oracle behind the protocol."""

    name = "scalar"

    def __init__(self, **_options) -> None:
        pass

    def capabilities(self) -> frozenset:
        return frozenset({CAP_ROUTING, CAP_OCCUPANCY, CAP_STREAM})

    def run_trials(self, switch, valid: np.ndarray):
        from repro.engine.batch import BatchRouting

        valid = np.asarray(valid, dtype=bool)
        routing = np.full(valid.shape, -1, dtype=np.int64)
        for i in range(valid.shape[0]):
            routing[i] = switch.setup(valid[i]).input_to_output
        return BatchRouting(
            n_inputs=switch.n,
            n_outputs=switch.m,
            valid=valid,
            input_to_output=routing,
        )


class BatchBackend(EngineBackend):
    """The vectorized numpy engine (``setup_batch``)."""

    name = "batch"

    def __init__(self, **_options) -> None:
        pass

    def capabilities(self) -> frozenset:
        return frozenset({CAP_ROUTING, CAP_OCCUPANCY, CAP_STREAM})

    def run_trials(self, switch, valid: np.ndarray):
        return switch.setup_batch(np.asarray(valid, dtype=bool))


class _GateBackend(EngineBackend):
    """Shared netlist resolution for the two gate-level backends."""

    def capabilities(self) -> frozenset:
        return frozenset({CAP_OCCUPANCY})

    def _netlist(self, switch):
        from repro.verify.differential import netlist_for

        netlist = netlist_for(switch)
        if netlist is None:
            raise ConfigurationError(
                f"backend {self.name!r} needs a gate netlist; "
                f"{switch!r} has none (n > 16 or unmapped design)"
            )
        return netlist


class PackedGateBackend(_GateBackend):
    """Bit-packed netlist evaluation: 64 trials per uint64 lane."""

    name = "packed"

    def __init__(self, **_options) -> None:
        pass

    def run_occupancy(self, switch, valid: np.ndarray) -> np.ndarray:
        from repro.gates.evaluate import evaluate_packed

        circuit, out_wires = self._netlist(switch)
        values = evaluate_packed(circuit, np.asarray(valid, dtype=bool))
        return values[:, out_wires]


class NetlistBackend(_GateBackend):
    """Sequential netlist evaluation, one trial at a time."""

    name = "netlist"

    def __init__(self, **_options) -> None:
        pass

    def run_occupancy(self, switch, valid: np.ndarray) -> np.ndarray:
        from repro.gates.evaluate import evaluate

        circuit, out_wires = self._netlist(switch)
        valid = np.asarray(valid, dtype=bool)
        out = np.zeros(valid.shape, dtype=bool)
        for i in range(valid.shape[0]):
            values = evaluate(circuit, valid[i])
            out[i] = np.asarray(values)[out_wires]
        return out


register_backend("scalar", ScalarBackend)
register_backend("batch", BatchBackend)
register_backend("packed", PackedGateBackend)
register_backend("netlist", NetlistBackend)
