"""The engine backend protocol.

Every de-facto execution path of the repo — the per-trial scalar
oracle, the vectorized numpy batch engine, the bit-packed gate
evaluator, the gate netlist — is an *engine backend*: something that
takes a ``(B, n)`` valid-bit array and produces routings (or, for the
gate paths, output occupancies).  This module makes that implicit
family explicit:

* :class:`EngineBackend` — the small interface (``run_trials``,
  ``run_occupancy``, ``run_stream``, ``capabilities``, ``plan_key``);
* a named registry (:func:`register_backend` / :func:`get_backend` /
  :func:`backend_names`) behind the CLI ``--backend`` selector;
* :class:`StreamSpec` / :class:`StreamSummary` — the deterministic
  trial-stream contract shared by every backend: trials are generated
  per *shard* from ``SeedSequence(seed).spawn(n_shards)`` children
  keyed by shard position, so the stream's ε/α results are identical
  for any worker count (and for the serial fallback).

Backends declaring the ``parallel`` capability (the sharded
multiprocess backend in :mod:`repro.engine.backends.sharded`) fan the
shards out over a persistent process pool; everything else runs them
in-process through exactly the same shard plan.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import obs
from repro.core.concentration import validate_partial_concentration
from repro.errors import ConfigurationError, ReproError

#: Capability tags a backend may declare.
CAP_ROUTING = "routing"  #: run_trials produces full BatchRouting rows
CAP_OCCUPANCY = "occupancy"  #: run_occupancy produces output occupancies
CAP_STREAM = "stream"  #: run_stream folds a sharded trial stream
CAP_PARALLEL = "parallel"  #: shards fan out across processes
CAP_SUPERVISED = "supervised"  #: pool dispatch survives worker death

#: Trials per shard when a stream spec does not say otherwise.  Small
#: enough that peak memory stays flat at 10^7+ trials, large enough
#: that the per-shard numpy dispatch overhead is noise.
DEFAULT_SHARD_TRIALS = 4096


def resolve_workers(workers: int | None) -> int:
    """Normalise a ``--workers`` value: ``0`` (or None) means "one per
    core", negatives are configuration errors (CLI exit code 2)."""
    if workers is None:
        workers = 0
    workers = int(workers)
    if workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


@dataclass(frozen=True)
class StreamSpec:
    """A deterministic stream of random trials.

    ``load="mixed"`` draws a per-trial validity threshold first (the
    ``repro verify`` distribution); ``load="half"`` is the flat p=0.5
    throughput workload of the engine benches.
    """

    trials: int
    seed: int = 0
    load: str = "mixed"
    shard_trials: int = DEFAULT_SHARD_TRIALS
    #: Validate the (n, m, alpha) contract on every shard.
    check_contract: bool = True
    #: Measure worst-case ε-nearsortedness where the switch tracks it.
    measure_epsilon: bool = True

    def shards(self) -> list[tuple[int, int]]:
        """``(start, stop)`` trial bounds per shard.  The split depends
        only on ``trials`` and ``shard_trials`` — never on the worker
        count — which is what makes stream results worker-invariant."""
        if self.trials < 0:
            raise ConfigurationError(f"trials must be >= 0, got {self.trials}")
        if self.shard_trials < 1:
            raise ConfigurationError(
                f"shard_trials must be >= 1, got {self.shard_trials}"
            )
        return [
            (start, min(start + self.shard_trials, self.trials))
            for start in range(0, self.trials, self.shard_trials)
        ]


def shard_valid(
    n: int, count: int, entropy: np.random.SeedSequence, load: str
) -> np.ndarray:
    """The shard trial generator every backend shares: ``count`` rows
    of valid bits drawn from a generator seeded by the shard's own
    SeedSequence child."""
    rng = np.random.default_rng(entropy)
    if load == "half":
        return rng.random((count, n)) < 0.5
    if load == "mixed":
        thresholds = rng.random((count, 1))
        return rng.random((count, n)) < thresholds
    raise ConfigurationError(f"unknown stream load model {load!r}")


@dataclass(frozen=True)
class StreamSummary:
    """The streaming reduction's fold state: everything ``repro
    verify`` needs, at O(1) memory per shard."""

    trials: int = 0
    shards: int = 0
    routed_total: int = 0
    min_routed: int | None = None
    worst_epsilon: int | None = None
    violations: int = 0
    #: First few violation messages (the fold caps this).
    messages: tuple[str, ...] = field(default=())

    MAX_MESSAGES = 8

    def fold(self, other: "StreamSummary") -> "StreamSummary":
        """Merge two shard summaries (associative and commutative, so
        as-completed folding is safe)."""

        def _opt(a, b, op):
            if a is None:
                return b
            if b is None:
                return a
            return op(a, b)

        return StreamSummary(
            trials=self.trials + other.trials,
            shards=self.shards + other.shards,
            routed_total=self.routed_total + other.routed_total,
            min_routed=_opt(self.min_routed, other.min_routed, min),
            worst_epsilon=_opt(self.worst_epsilon, other.worst_epsilon, max),
            violations=self.violations + other.violations,
            messages=(self.messages + other.messages)[: self.MAX_MESSAGES],
        )


def summarize_batch(
    switch,
    valid: np.ndarray,
    routing: np.ndarray,
    *,
    check_contract: bool = True,
    measure_epsilon: bool = True,
) -> StreamSummary:
    """Reduce one shard's routings to a :class:`StreamSummary`.

    Contract violations are *counted* (with row-localised messages),
    never raised — the caller decides whether a violated stream is an
    exit code or a recorded finding.
    """
    from repro.engine.batch import BatchRouting, nearsortedness_batch
    from repro.verify.differential import output_occupancy

    batch = BatchRouting(
        n_inputs=switch.n,
        n_outputs=switch.m,
        valid=valid,
        input_to_output=routing,
    )
    routed = batch.routed_counts
    violations = 0
    messages: list[str] = []
    if check_contract:
        spec = switch.spec
        for i in range(valid.shape[0]):
            try:
                validate_partial_concentration(spec, valid[i], routing[i])
            except ReproError as exc:
                violations += 1
                if len(messages) < StreamSummary.MAX_MESSAGES:
                    messages.append(f"trial {i}: {exc}")
    worst_eps: int | None = None
    if measure_epsilon and hasattr(switch, "final_positions"):
        occupancy = output_occupancy(switch, valid, routing=routing)
        if occupancy is not None:
            worst_eps = int(nearsortedness_batch(occupancy).max(initial=0))
    return StreamSummary(
        trials=int(valid.shape[0]),
        shards=1,
        routed_total=int(routed.sum()),
        min_routed=int(routed.min()) if routed.size else None,
        worst_epsilon=worst_eps,
        violations=violations,
        messages=tuple(messages),
    )


class EngineBackend:
    """One execution path behind the ``--backend`` selector.

    Subclasses set :attr:`name`, declare :meth:`capabilities`, and
    implement :meth:`run_trials` (routing backends) or
    :meth:`run_occupancy` (gate backends).  :meth:`run_stream` has a
    serial default that every backend inherits; the multiprocess
    backend overrides it to fan shards over the worker pool.
    """

    name = "abstract"

    def capabilities(self) -> frozenset:
        raise NotImplementedError

    def plan_key(self, switch) -> tuple | None:
        """The switch's compiled-plan cache key, or None for switches
        without a plan (accessing it compiles the plan as a side
        effect, which is exactly what warm-start shipping needs)."""
        plan = getattr(switch, "_plan", None)
        return getattr(plan, "key", None)

    def run_trials(self, switch, valid: np.ndarray):
        """Route a ``(B, n)`` trial array; returns a
        :class:`~repro.engine.batch.BatchRouting`."""
        raise ConfigurationError(
            f"backend {self.name!r} cannot produce routings "
            f"(capabilities: {', '.join(sorted(self.capabilities()))})"
        )

    def run_occupancy(self, switch, valid: np.ndarray) -> np.ndarray | None:
        """Output occupancy bits per trial, or None where the switch
        cannot report final positions."""
        from repro.verify.differential import output_occupancy

        batch = self.run_trials(switch, valid)
        return output_occupancy(switch, valid, routing=batch.input_to_output)

    def run_stream(self, switch, spec: StreamSpec) -> StreamSummary:
        """Generate and reduce ``spec.trials`` random trials, shard by
        shard (the serial reference fold; see module docstring)."""
        shards = spec.shards()
        children = np.random.SeedSequence(spec.seed).spawn(max(1, len(shards)))
        summary = StreamSummary()
        for index, (start, stop) in enumerate(shards):
            obs.counter("engine.shards", backend=self.name).inc()
            valid = shard_valid(switch.n, stop - start, children[index], spec.load)
            batch = self.run_trials(switch, valid)
            summary = summary.fold(
                summarize_batch(
                    switch,
                    valid,
                    batch.input_to_output,
                    check_contract=spec.check_contract,
                    measure_epsilon=spec.measure_epsilon,
                )
            )
        return summary


#: name -> factory(workers=...) for every registered backend.
_BACKENDS: dict[str, Callable[..., EngineBackend]] = {}


def register_backend(name: str, factory: Callable[..., EngineBackend]) -> None:
    _BACKENDS[name] = factory


def backend_names() -> list[str]:
    return sorted(_BACKENDS)


def get_backend(name: str, *, workers: int = 1, **options) -> EngineBackend:
    """Instantiate a registered backend.  ``workers`` is forwarded to
    backends that fan out and ignored by the single-process ones."""
    factory = _BACKENDS.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown engine backend {name!r}; available: "
            f"{', '.join(backend_names())}"
        )
    return factory(workers=workers, **options)


__all__ = [
    "CAP_OCCUPANCY",
    "CAP_PARALLEL",
    "CAP_ROUTING",
    "CAP_STREAM",
    "CAP_SUPERVISED",
    "DEFAULT_SHARD_TRIALS",
    "EngineBackend",
    "StreamSpec",
    "StreamSummary",
    "backend_names",
    "get_backend",
    "register_backend",
    "resolve_workers",
    "shard_valid",
    "summarize_batch",
]
