"""repro.engine.backends — execution paths behind one protocol.

``get_backend("scalar" | "batch" | "packed" | "netlist" | "process")``
returns an :class:`~repro.engine.backends.base.EngineBackend`; see
``docs/performance.md`` ("Scaling") for when each wins.
"""

from repro.engine.backends.base import (
    CAP_OCCUPANCY,
    CAP_PARALLEL,
    CAP_ROUTING,
    CAP_STREAM,
    DEFAULT_SHARD_TRIALS,
    EngineBackend,
    StreamSpec,
    StreamSummary,
    backend_names,
    get_backend,
    register_backend,
    resolve_workers,
    shard_valid,
    summarize_batch,
)
from repro.engine.backends.local import (
    BatchBackend,
    NetlistBackend,
    PackedGateBackend,
    ScalarBackend,
)
from repro.engine.backends.pool import shared_pool, shutdown_pools
from repro.engine.backends.sharded import ShardedBackend

__all__ = [
    "CAP_OCCUPANCY",
    "CAP_PARALLEL",
    "CAP_ROUTING",
    "CAP_STREAM",
    "DEFAULT_SHARD_TRIALS",
    "BatchBackend",
    "EngineBackend",
    "NetlistBackend",
    "PackedGateBackend",
    "ScalarBackend",
    "ShardedBackend",
    "StreamSpec",
    "StreamSummary",
    "backend_names",
    "get_backend",
    "register_backend",
    "resolve_workers",
    "shard_valid",
    "shared_pool",
    "shutdown_pools",
    "summarize_batch",
]
