"""repro.engine.backends — execution paths behind one protocol.

``get_backend("scalar" | "batch" | "packed" | "netlist" | "process")``
returns an :class:`~repro.engine.backends.base.EngineBackend`; see
``docs/performance.md`` ("Scaling") for when each wins.
"""

from repro.engine.backends.base import (
    CAP_OCCUPANCY,
    CAP_PARALLEL,
    CAP_ROUTING,
    CAP_STREAM,
    CAP_SUPERVISED,
    DEFAULT_SHARD_TRIALS,
    EngineBackend,
    StreamSpec,
    StreamSummary,
    backend_names,
    get_backend,
    register_backend,
    resolve_workers,
    shard_valid,
    summarize_batch,
)
from repro.engine.backends.local import (
    BatchBackend,
    NetlistBackend,
    PackedGateBackend,
    ScalarBackend,
)
from repro.engine.backends.pool import (
    shared_pool,
    shm_segments,
    shutdown_pools,
    sweep_orphan_shm,
)
from repro.engine.backends.sharded import ShardedBackend
from repro.engine.backends.supervisor import (
    ShardSupervisor,
    SupervisorPolicy,
    add_event_sink,
    chaos_from_env,
    remove_event_sink,
)

__all__ = [
    "CAP_OCCUPANCY",
    "CAP_PARALLEL",
    "CAP_ROUTING",
    "CAP_STREAM",
    "CAP_SUPERVISED",
    "DEFAULT_SHARD_TRIALS",
    "BatchBackend",
    "EngineBackend",
    "NetlistBackend",
    "PackedGateBackend",
    "ScalarBackend",
    "ShardSupervisor",
    "ShardedBackend",
    "StreamSpec",
    "StreamSummary",
    "SupervisorPolicy",
    "add_event_sink",
    "backend_names",
    "chaos_from_env",
    "get_backend",
    "register_backend",
    "remove_event_sink",
    "resolve_workers",
    "shard_valid",
    "shared_pool",
    "shm_segments",
    "shutdown_pools",
    "summarize_batch",
    "sweep_orphan_shm",
]
