"""The sharded multiprocess backend (``--backend process``).

Work is split into shards whose boundaries depend only on the trial
count (never the worker count), each shard is dispatched to the
persistent :mod:`~repro.engine.backends.pool` and executed through the
vectorized batch engine, and the results come back two ways:

* ``run_trials`` — the trial data itself crosses the boundary through
  ``multiprocessing.shared_memory``: the parent publishes the uint8
  valid bits, workers write int32 final positions into their own row
  slice, and nothing but per-shard stats is pickled;
* ``run_stream`` — workers *generate* their shard's trials from a
  ``SeedSequence(seed).spawn(...)`` child keyed by shard position and
  return an O(1) :class:`~repro.engine.backends.base.StreamSummary`,
  which the parent folds as shards complete — peak memory stays flat
  at 10⁷+ trials because full trial arrays never exist anywhere.

Each shard runs under a private :mod:`repro.obs` registry
(:func:`~repro.engine.backends.pool.run_collected`); the parent merges
the portable snapshots back in shard order, so counters and histograms
land in their original keys and gauges/spans carry
``{worker=shard-N}`` provenance.  ``workers == 1`` short-circuits to
in-process execution through the very same shard plan, which is why
results are byte-identical for any worker count.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.engine.backends.base import (
    CAP_OCCUPANCY,
    CAP_PARALLEL,
    CAP_ROUTING,
    CAP_STREAM,
    CAP_SUPERVISED,
    DEFAULT_SHARD_TRIALS,
    EngineBackend,
    StreamSpec,
    StreamSummary,
    register_backend,
    resolve_workers,
    shard_valid,
    summarize_batch,
)
from repro.engine.backends.pool import (
    as_shm_array,
    attach_shm,
    run_collected,
    shared_pool,
    shm_segments,
)
from repro.engine.backends.supervisor import (
    ShardSupervisor,
    SupervisorPolicy,
    chaos_from_env,
)


def _routing_shard_job(job: dict) -> dict:
    """Worker body for ``run_trials``: route rows [start, stop) of the
    shared valid buffer, write positions into the shared out buffer."""
    switch = job["switch"]
    start, stop = job["rows"]
    shm_in = attach_shm(job["valid_shm"])
    shm_out = attach_shm(job["out_shm"])
    try:
        valid_all = as_shm_array(shm_in, job["shape"], np.uint8)
        out_all = as_shm_array(shm_out, job["shape"], np.int32)
        valid = valid_all[start:stop].astype(bool)
        batch = switch.setup_batch(valid)
        out_all[start:stop] = batch.input_to_output.astype(np.int32)
        routed = batch.routed_counts
        return {
            "trials": int(stop - start),
            "routed_total": int(routed.sum()),
        }
    finally:
        shm_in.close()
        shm_out.close()


def _stream_shard_job(job: dict) -> dict:
    """Worker body for ``run_stream``: generate this shard's trials
    from its own SeedSequence child, route, and reduce to a summary."""
    switch = job["switch"]
    valid = shard_valid(switch.n, job["count"], job["entropy"], job["load"])
    batch = switch.setup_batch(valid)
    summary = summarize_batch(
        switch,
        valid,
        batch.input_to_output,
        check_contract=job["check_contract"],
        measure_epsilon=job["measure_epsilon"],
    )
    return summary.__dict__.copy()


class ShardedBackend(EngineBackend):
    """Sharded multiprocess execution over the persistent pool."""

    name = "process"

    def __init__(
        self,
        *,
        workers: int = 0,
        shard_trials: int = DEFAULT_SHARD_TRIALS,
        deadline_s: float | None = None,
        max_retries: int = 2,
        backoff_s: float = 0.05,
        degrade: bool = True,
        _test_shard_delay_s: float = 0.0,
        _test_chaos: dict | None = None,
        **_options,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.shard_trials = int(shard_trials)
        self.policy = SupervisorPolicy(
            deadline_s=deadline_s,
            max_retries=int(max_retries),
            backoff_s=float(backoff_s),
            degrade=bool(degrade),
        )
        self._test_shard_delay_s = float(_test_shard_delay_s)
        self._test_chaos = _test_chaos

    def capabilities(self) -> frozenset:
        return frozenset(
            {CAP_ROUTING, CAP_OCCUPANCY, CAP_STREAM, CAP_PARALLEL, CAP_SUPERVISED}
        )

    # -- dispatch plumbing -------------------------------------------

    def _jobs(self, switch, jobs: list[dict]) -> None:
        """Attach shard indices, the plan payload, and test hooks."""
        payload = None
        if self.workers > 1:
            key = self.plan_key(switch)
            payload = shared_pool(self.workers).plan_payload([key])
        for index, job in enumerate(jobs):
            job["shard"] = index
            if payload:
                job["plans"] = payload
            if self._test_shard_delay_s and index == 0:
                job["delay_s"] = self._test_shard_delay_s

    def _dispatch(self, switch, fn, jobs: list[dict]) -> list[object]:
        """Run the shard jobs (pool or inline), merge worker snapshots
        back in shard order, and return per-shard results in shard
        order.

        Pool dispatch is supervised (:mod:`.supervisor`): a dead or
        deadline-stuck worker costs a retry and a pool respawn, never
        the run — and because every shard's entropy is keyed to its
        position, retried results are byte-identical to a clean run's.

        The whole round runs inside one ``engine.shards`` span; when a
        trace context is active its span id is shipped to every shard
        as the causal parent of the worker's root spans, which is how
        ``repro obs analyze`` stitches per-worker subtrees back under
        the dispatching command.
        """
        self._jobs(switch, jobs)
        for _ in jobs:
            obs.counter("engine.shards", backend=self.name).inc()
        parent = obs.get_registry()
        with parent.span("engine.shards", backend=self.name, shards=len(jobs)):
            ctx = parent.tracer.context if parent.enabled else None
            if ctx is not None:
                dispatch_id = parent.tracer.active_span_id
                for job in jobs:
                    job["trace"] = ctx.ship(
                        parent_id=dispatch_id, prefix=f"shard-{job['shard']}"
                    )
            if self.workers > 1 and len(jobs) > 1:
                chaos = self._test_chaos or chaos_from_env()
                if chaos:
                    for job in jobs:
                        job["chaos"] = dict(chaos)
                supervisor = ShardSupervisor(
                    shared_pool(self.workers),
                    self.policy,
                    plan_keys=[self.plan_key(switch)],
                    label=self.name,
                )
                outcomes = supervisor.run(fn, jobs)
            else:
                outcomes = [run_collected(fn, job) for job in jobs]
            results = []
            for index, (result, snapshot) in enumerate(outcomes):
                if parent.enabled:
                    from repro.obs.live.merge import merge_portable

                    merge_portable(parent, snapshot, worker=f"shard-{index}")
                results.append(result)
        return results

    # -- the protocol ------------------------------------------------

    def run_trials(self, switch, valid: np.ndarray):
        from repro.engine.batch import BatchRouting

        valid = np.asarray(valid, dtype=bool)
        trials, n = valid.shape
        bounds = [
            (start, min(start + self.shard_trials, trials))
            for start in range(0, trials, self.shard_trials)
        ]
        if self.workers <= 1 or len(bounds) <= 1:
            # Small batches aren't worth the buffer round trip; the
            # result is identical because rows route independently.
            return switch.setup_batch(valid)
        # The context manager releases both segments on every exit path
        # — including a failure between the two allocations or a shard
        # job raising mid-dispatch — and registers them in the orphan
        # set that pool shutdown sweeps as a last resort.
        with shm_segments(trials * n, trials * n * 4) as (shm_in, shm_out):
            as_shm_array(shm_in, valid.shape, np.uint8)[:] = valid
            jobs = [
                {
                    "switch": switch,
                    "rows": rows,
                    "valid_shm": shm_in.name,
                    "out_shm": shm_out.name,
                    "shape": valid.shape,
                }
                for rows in bounds
            ]
            self._dispatch(switch, _routing_shard_job, jobs)
            routing = (
                as_shm_array(shm_out, valid.shape, np.int32)
                .astype(np.int64)
            )
        return BatchRouting(
            n_inputs=switch.n,
            n_outputs=switch.m,
            valid=valid,
            input_to_output=routing,
        )

    def run_stream(self, switch, spec: StreamSpec) -> StreamSummary:
        shards = spec.shards()
        if not shards:
            return StreamSummary()
        children = np.random.SeedSequence(spec.seed).spawn(len(shards))
        jobs = [
            {
                "switch": switch,
                "count": stop - start,
                "entropy": children[index],
                "load": spec.load,
                "check_contract": spec.check_contract,
                "measure_epsilon": spec.measure_epsilon,
            }
            for index, (start, stop) in enumerate(shards)
        ]
        summary = StreamSummary()
        for result in self._dispatch(switch, _stream_shard_job, jobs):
            result = dict(result)
            result["messages"] = tuple(result.get("messages", ()))
            summary = summary.fold(StreamSummary(**result))
        return summary


register_backend("process", ShardedBackend)
