"""The shard supervisor: self-healing dispatch over the worker pool.

A multi-hour certify or stream run used to die with a raw
``BrokenProcessPool`` the moment one pool worker was OOM-killed or
segfaulted, throwing away every completed shard.  The supervisor wraps
every pool dispatch with the recovery loop the rest of the stack can
build on:

* **failure classification** — a completed-with-exception shard is one
  of ``worker-death`` (the executor broke underneath it),
  ``timeout`` (it outlived the per-shard deadline), or ``transient``
  (the job itself raised);
* **deterministic retry** — failed shards are resubmitted with capped
  exponential backoff.  A shard job carries its own SeedSequence child
  (or its own pattern chunk), so a retried shard recomputes exactly the
  bytes a clean run would have produced — retries change *when* a
  result arrives, never *what* it is;
* **pool respawn** — a broken or deadline-stuck executor is torn down
  (stuck workers killed) and rebuilt; the pool's plan-shipping sets are
  reset so compiled plans re-ship to the fresh children;
* **graceful degradation** — a shard that exhausts its retry budget
  runs in-process in the parent (chaos hooks stripped) instead of
  crashing the run; only if that also fails does the supervisor raise
  :class:`~repro.errors.ExecutionError` (CLI exit 3).

Observability: the whole recovery loop runs inside an
``engine.supervisor`` span; resubmissions, deadline expiries, respawns,
and fallbacks tick the ``engine.shard_retries`` /
``engine.shard_timeouts`` / ``engine.pool_respawns`` /
``engine.degraded_fallbacks`` counters; and worker-death / timeout /
respawn / degraded events reach the live journal through the module's
event sinks (wired up by the CLI's telemetry scope), so a crash report
can name the shard that killed its worker.

Chaos hooks: a job dict may carry a ``chaos`` entry (see
:func:`repro.engine.backends.pool.maybe_die`) with ``die_mode`` one of
``exit`` (``os._exit``), ``kill`` (SIGKILL to self), ``raise``, or
``sleep`` (sleep past the deadline) — test-only fault injection,
settable via the ``REPRO_CHAOS`` environment variable for CLI-level
chaos tests (never set outside tests/CI).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, CancelledError, wait
from dataclasses import dataclass
from typing import Callable

from repro import obs
from repro.errors import ExecutionError

#: Failure classes the supervisor distinguishes.
REASON_WORKER_DEATH = "worker-death"
REASON_TIMEOUT = "timeout"
REASON_TRANSIENT = "transient"

_EVENT_SINKS: list[Callable[..., None]] = []


def add_event_sink(sink: Callable[..., None]) -> None:
    """Register a ``sink(kind, **fields)`` callable for supervision
    events (``worker_death`` / ``shard_timeout`` / ``pool_respawn`` /
    ``degraded``).  The CLI's telemetry scope adapts these into journal
    frames."""
    _EVENT_SINKS.append(sink)


def remove_event_sink(sink: Callable[..., None]) -> None:
    if sink in _EVENT_SINKS:
        _EVENT_SINKS.remove(sink)


def _emit_event(kind: str, **fields: object) -> None:
    for sink in list(_EVENT_SINKS):
        try:
            sink(kind, **fields)
        except Exception:
            # A broken consumer must not take the dispatch down.
            pass


def chaos_from_env() -> dict | None:
    """Test-only: parse ``REPRO_CHAOS=die_mode[:shard[:sleep_s]]`` (and
    the optional ``REPRO_CHAOS_TOKEN`` once-token path) into a chaos
    dict for the job payload.  Returns None when unset — the production
    path."""
    spec = os.environ.get("REPRO_CHAOS")
    if not spec:
        return None
    parts = spec.split(":")
    chaos: dict = {"die_mode": parts[0]}
    if len(parts) > 1 and parts[1] != "":
        chaos["shard"] = int(parts[1])
    if len(parts) > 2:
        chaos["sleep_s"] = float(parts[2])
    token = os.environ.get("REPRO_CHAOS_TOKEN")
    if token:
        chaos["once_token"] = token
    return chaos


@dataclass(frozen=True)
class SupervisorPolicy:
    """Retry/deadline knobs for one supervised dispatch round."""

    #: Per-shard wall deadline, measured from (re)submission.  None
    #: disables deadline enforcement (the default: a clean run must
    #: never pay a timeout respawn because a shard was merely slow).
    deadline_s: float | None = None
    #: Resubmissions a single shard may consume before it degrades.
    max_retries: int = 2
    #: First backoff sleep; doubles per charged retry of that shard.
    backoff_s: float = 0.05
    #: Backoff ceiling.
    backoff_cap_s: float = 1.0
    #: Run budget-exhausted shards in-process instead of raising.
    degrade: bool = True
    #: Poll granularity of the wait loop (also bounds how late a
    #: deadline expiry is noticed).
    poll_s: float = 0.05


class ShardSupervisor:
    """Supervised execution of one round of shard jobs over a
    :class:`~repro.engine.backends.pool.WorkerPool`.

    Results come back in job order, exactly shaped like the unsupervised
    path (``(result, worker_snapshot)`` pairs), so callers fold and
    merge precisely as before — byte-identical outputs are the whole
    point of keying retries to the same shard entropy.
    """

    def __init__(
        self,
        pool,
        policy: SupervisorPolicy | None = None,
        *,
        plan_keys: tuple | list = (),
        label: str = "shards",
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.pool = pool
        self.policy = policy or SupervisorPolicy()
        self.plan_keys = [key for key in plan_keys if key is not None]
        self.label = label
        self.clock = clock
        self.sleep = sleep

    # -- internals ---------------------------------------------------

    def _backoff(self, charged_retries: int) -> float:
        policy = self.policy
        return min(
            policy.backoff_cap_s, policy.backoff_s * (2 ** max(0, charged_retries - 1))
        )

    def _respawn(self, *, kill: bool, reason: str) -> dict | None:
        """Tear down and rebuild the pool executor; returns the plan
        payload to re-ship to the fresh children (their caches start
        empty)."""
        obs.counter("engine.pool_respawns").inc()
        self.pool.respawn(kill=kill)
        _emit_event(
            "pool_respawn", reason=reason, workers=self.pool.workers,
            label=self.label,
        )
        if self.plan_keys:
            return self.pool.plan_payload(self.plan_keys)
        return None

    def _submit(self, fn, state: dict, index: int, pending: dict) -> None:
        entry = state[index]
        try:
            future = self.pool.submit(fn, entry["job"])
        except BrokenExecutor:
            # The executor broke *before* accepting this job (a worker
            # died while the round was still being submitted — submit
            # raises synchronously on a broken pool).  Respawn and hand
            # the job to the fresh executor; the shard never ran, so
            # nothing is charged.  Already-accepted futures of the dead
            # generation surface as stale BrokenExecutor results and
            # are rescued by the main loop.
            _emit_event("worker_death", shard=index, label=self.label,
                        retries=entry["retries"])
            payload = self._respawn(kill=False, reason=REASON_WORKER_DEATH)
            if payload:
                entry["job"]["plans"] = payload
            future = self.pool.submit(fn, entry["job"])
        entry["started"] = self.clock()
        entry["generation"] = self.pool.generation
        pending[future] = index

    def _degrade(self, fn, entry: dict, index: int, reason: str):
        """Budget exhausted: run the shard in-process in the parent.
        Chaos hooks and plan payloads are stripped — the parent owns
        the live plan cache, and an in-process ``os._exit`` would kill
        the run the fallback exists to save."""
        from repro.engine.backends.pool import run_collected

        obs.counter("engine.degraded_fallbacks").inc()
        _emit_event(
            "degraded", shard=index, reason=reason, label=self.label,
            retries=entry["retries"],
        )
        job = dict(entry["job"])
        job.pop("chaos", None)
        job.pop("plans", None)
        try:
            return run_collected(fn, job)
        except Exception as exc:
            raise ExecutionError(
                f"shard {index} failed in-process after exhausting "
                f"{self.policy.max_retries} retries ({reason}): {exc!r}"
            ) from exc

    # -- the loop ----------------------------------------------------

    def run(self, fn, jobs: list[dict], *, on_result=None) -> list[tuple]:
        """Execute ``fn`` over ``jobs`` with supervision; returns
        ``(result, snapshot)`` pairs in job order.  ``on_result(index,
        outcome)`` fires in *completion* order — checkpoint writers
        hook it to persist finished shards as they land."""
        policy = self.policy
        results: list = [None] * len(jobs)
        state = {
            index: {"job": job, "retries": 0, "started": None, "generation": 0}
            for index, job in enumerate(jobs)
        }
        pending: dict = {}
        with obs.span(
            "engine.supervisor",
            shards=len(jobs),
            workers=self.pool.workers,
            label=self.label,
        ):
            try:
                for index in state:
                    self._submit(fn, state, index, pending)
                while pending:
                    done, _ = wait(
                        set(pending), timeout=policy.poll_s,
                        return_when=FIRST_COMPLETED,
                    )
                    retry: list[tuple[int, str, bool]] = []  # (shard, reason, charged)
                    respawn_reason: str | None = None
                    respawn_kill = False
                    broken: list[int] = []
                    for future in done:
                        index = pending.pop(future)
                        entry = state[index]
                        try:
                            outcome = future.result()
                        except BrokenExecutor:
                            stale = entry["generation"] < self.pool.generation
                            if not stale:
                                respawn_reason = respawn_reason or REASON_WORKER_DEATH
                                broken.append(index)
                            # Stale futures are collateral of an earlier
                            # respawn in this round: rescue, don't charge.
                            retry.append((index, REASON_WORKER_DEATH, not stale))
                        except CancelledError:
                            retry.append((index, REASON_WORKER_DEATH, False))
                        except Exception:
                            retry.append((index, REASON_TRANSIENT, True))
                        else:
                            results[index] = outcome
                            if on_result is not None:
                                on_result(index, outcome)
                    if broken:
                        # One death breaks every in-flight future at
                        # once; one journal frame describes it (the
                        # victim is unknowable — the executor only says
                        # "a child terminated abruptly").
                        _emit_event(
                            "worker_death", shard=min(broken),
                            in_flight=len(broken), label=self.label,
                        )
                    if policy.deadline_s is not None:
                        now = self.clock()
                        for future, index in list(pending.items()):
                            entry = state[index]
                            started = entry["started"]
                            if started is None or now - started <= policy.deadline_s:
                                continue
                            obs.counter("engine.shard_timeouts").inc()
                            _emit_event(
                                "shard_timeout", shard=index, label=self.label,
                                deadline_s=policy.deadline_s,
                                retries=entry["retries"],
                            )
                            del pending[future]
                            retry.append((index, REASON_TIMEOUT, True))
                            respawn_reason = respawn_reason or REASON_TIMEOUT
                            # The worker is wedged mid-shard; only a
                            # kill can reclaim it.
                            respawn_kill = True
                    if not retry:
                        continue
                    payload = None
                    if respawn_reason is not None:
                        # Everything still in flight rode the torn-down
                        # executor: rescue those shards in this round too.
                        for future, index in list(pending.items()):
                            del pending[future]
                            future.cancel()
                            retry.append((index, respawn_reason, False))
                        payload = self._respawn(
                            kill=respawn_kill, reason=respawn_reason
                        )
                    max_backoff = 0.0
                    exhausted: list[tuple[int, str]] = []
                    resubmit: list[int] = []
                    for index, reason, charged in retry:
                        entry = state[index]
                        if charged:
                            entry["retries"] += 1
                        if charged and entry["retries"] > policy.max_retries:
                            exhausted.append((index, reason))
                            continue
                        obs.counter("engine.shard_retries").inc()
                        if charged:
                            max_backoff = max(
                                max_backoff, self._backoff(entry["retries"])
                            )
                        resubmit.append(index)
                    for index, reason in exhausted:
                        if not policy.degrade:
                            raise ExecutionError(
                                f"shard {index} exhausted its retry budget "
                                f"({policy.max_retries} retries, last failure: "
                                f"{reason}) and degradation is disabled"
                            )
                        outcome = self._degrade(fn, state[index], index, reason)
                        results[index] = outcome
                        if on_result is not None:
                            on_result(index, outcome)
                    if max_backoff > 0.0:
                        self.sleep(max_backoff)
                    for index in sorted(resubmit):
                        if payload:
                            state[index]["job"]["plans"] = payload
                        self._submit(fn, state, index, pending)
            except BaseException:
                for future in pending:
                    future.cancel()
                raise
        return results


__all__ = [
    "REASON_TIMEOUT",
    "REASON_TRANSIENT",
    "REASON_WORKER_DEATH",
    "ShardSupervisor",
    "SupervisorPolicy",
    "add_event_sink",
    "chaos_from_env",
    "remove_event_sink",
]
