"""The persistent worker-process pool behind the sharded backend.

One :class:`WorkerPool` per worker count lives for the whole process
(created lazily, shut down atexit), so plan compilation, interpreter
startup, and numpy import are paid once — not per ``run_trials`` call.

Three pieces of process-boundary plumbing live here:

* **plan shipping** — compiled ``StagePlan``/``ComparatorPlan`` arrays
  cross the boundary once per ``(type, n, m)`` key via
  ``PlanCache.snapshot()``/``restore()`` (never rebuilt per shard).
  Under the ``fork`` start method the pool's children additionally
  inherit every plan that existed when the pool was created, so the
  payload only covers keys compiled afterwards.
* **shared-memory buffers** — :func:`create_shm` / :func:`attach_shm`
  wrap ``multiprocessing.shared_memory`` so trial arrays (uint8 valid
  bits in, int32 positions out) avoid pickling.  ``attach_shm``
  unregisters the segment from the child's resource tracker: on
  CPython < 3.13 attaching registers it, and the tracker would unlink
  the parent's segment when the child exits.
* **collected execution** — :func:`run_collected` runs a job under a
  private :mod:`repro.obs` registry, samples the worker's own process
  vitals (``proc.rss_kb`` et al. — the parent's resource sampler only
  sees the parent), and returns the result with a portable
  ``repro.obs/worker@1`` snapshot for the parent to merge in work-list
  order.  A shipped ``trace`` payload (:mod:`repro.obs.tracectx`)
  rebuilds the parent's causal trace context, so worker spans carry
  ``span_id``/``parent_id`` linking back to the dispatching span.
"""

from __future__ import annotations

import atexit
import contextlib
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory

import numpy as np

from repro import obs
from repro.engine.plan import PLAN_CACHE


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


#: Names of parent-owned segments not yet unlinked — the orphan set
#: :func:`sweep_orphan_shm` reclaims if a dispatch round dies between
#: creation and its own cleanup.
_LIVE_SHM: set[str] = set()


def create_shm(nbytes: int) -> shared_memory.SharedMemory:
    """A fresh shared-memory segment owned (and later unlinked) by the
    caller."""
    shm = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
    _LIVE_SHM.add(shm.name)
    return shm


def release_shm(shm: shared_memory.SharedMemory) -> None:
    """Close and unlink a parent-owned segment (idempotent)."""
    _LIVE_SHM.discard(shm.name)
    with contextlib.suppress(Exception):
        shm.close()
    with contextlib.suppress(FileNotFoundError):
        shm.unlink()


@contextlib.contextmanager
def shm_segments(*sizes: int):
    """Create one segment per requested size, releasing every segment
    that was successfully created on *any* exit path — including a
    failure partway through allocation, which used to leak the earlier
    segments."""
    segments: list[shared_memory.SharedMemory] = []
    try:
        for nbytes in sizes:
            segments.append(create_shm(nbytes))
        yield segments
    finally:
        for shm in segments:
            release_shm(shm)


def sweep_orphan_shm() -> int:
    """Unlink any parent-owned segments still registered (a dispatch
    round died before its own cleanup); returns the number swept.
    Called by :func:`shutdown_pools`, so pool shutdown leaves no
    segments behind even after a crash."""
    swept = 0
    for name in sorted(_LIVE_SHM):
        with contextlib.suppress(Exception):
            shm = shared_memory.SharedMemory(name=name)
            shm.close()
            shm.unlink()
            swept += 1
    _LIVE_SHM.clear()
    return swept


def attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to a parent-owned segment from a worker process without
    adopting unlink responsibility.

    Only needed under ``spawn``: there each worker runs its own
    resource tracker, which (CPython < 3.13) registers the segment on
    attach and would unlink the parent's memory when the worker exits.
    Under ``fork`` the workers share the parent's tracker, whose
    registration set already holds the name, so no action is needed
    (and an extra unregister would double-remove).
    """
    shm = shared_memory.SharedMemory(name=name)
    if "fork" not in multiprocessing.get_all_start_methods():
        try:  # pragma: no cover - tracker layout is a CPython detail
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
    return shm


def _sample_worker_vitals() -> None:
    """Record this worker's own process vitals as gauges on the active
    (private) registry; after the merge they surface in the parent as
    ``proc.rss_kb{pid=...,worker=...}`` etc. — per-worker provenance
    the parent-side resource sampler cannot provide.  The ``pid`` label
    lets aggregators (the bench suite's child-RSS roll-up) dedupe the
    many per-shard samples of one worker process, and distinguish real
    pool children from the inline ``workers == 1`` fallback running in
    the parent."""
    import os

    from repro.obs.live.resource import sample_process

    vitals = sample_process()
    pid = os.getpid()
    if vitals.get("rss_kb") is not None:
        obs.gauge("proc.rss_kb", pid=pid).set(int(vitals["rss_kb"]))
    obs.gauge("proc.cpu_s", pid=pid).set(vitals["cpu_s"])
    obs.gauge("proc.gc_collections", pid=pid).set(vitals["gc_collections"])


def maybe_die(chaos: dict | None, shard: int | None) -> None:
    """Test-only chaos hook: act out the job's ``chaos`` payload.

    ``die_mode`` is one of ``exit`` (abrupt ``os._exit``, the shape of
    an OOM kill), ``kill`` (SIGKILL to self), ``raise`` (a transient
    in-job exception), or ``sleep`` (sleep ``sleep_s`` seconds — long
    enough to blow any test deadline).  ``shard`` scopes the chaos to
    one shard index; ``once_token`` is a filesystem path claimed
    atomically by the first victim, so the injected failure fires
    exactly once across the whole run and every retry runs clean.
    Never set outside tests/CI.
    """
    if not chaos:
        return
    target = chaos.get("shard")
    if target is not None and shard != target:
        return
    token = chaos.get("once_token")
    if token:
        try:
            os.close(os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        except FileExistsError:
            return  # somebody already died for this token
    mode = chaos.get("die_mode")
    if mode == "exit":
        os._exit(17)
    if mode == "kill":
        import signal

        os.kill(os.getpid(), signal.SIGKILL)
    if mode == "raise":
        raise RuntimeError(f"injected chaos failure (shard {shard})")
    if mode == "sleep":
        time.sleep(float(chaos.get("sleep_s", 60.0)))


def run_collected(fn, job: dict) -> tuple[object, dict]:
    """Execute ``fn(job)`` in a worker: restore any shipped plans,
    collect metrics into a private registry, and return
    ``(result, portable_snapshot)``.

    Also the serial in-process fallback (``workers == 1`` runs this
    inline), so journals and provenance labels look the same for every
    worker count.
    """
    from repro.obs.live.merge import portable_snapshot, roundtrip
    from repro.obs.tracectx import child_context

    plans = job.pop("plans", None)
    if plans:
        PLAN_CACHE.restore(plans)
    delay = job.pop("delay_s", 0.0)
    if delay:
        # Test hook: an injected slow shard (see tests/test_backend.py's
        # regression-gate pin). Never set outside tests.
        time.sleep(delay)
    maybe_die(job.pop("chaos", None), job.get("shard"))
    trace = job.pop("trace", None)
    local = obs.Registry()
    if trace is not None:
        # Rebuild the dispatching parent's trace context so this
        # worker's spans carry span_id/parent_id rooted at the parent's
        # engine.shards span (see repro.obs.tracectx).
        local.tracer.context = child_context(trace)
    with obs.using(local):
        with obs.span("engine.shard", shard=job.get("shard", 0)):
            result = fn(job)
        _sample_worker_vitals()
    return result, roundtrip(portable_snapshot(local))


class WorkerPool:
    """A lazily-started, persistent ``ProcessPoolExecutor``."""

    def __init__(self, workers: int) -> None:
        self.workers = int(workers)
        self._executor: ProcessPoolExecutor | None = None
        self._shipped: set = set()
        self._inherited: set = set()
        #: Bumped on every respawn, so a supervisor can tell a future
        #: that died with the *current* executor from a stale one.
        self.generation = 0

    @property
    def executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            ctx = _mp_context()
            # A fresh executor has fresh children: any record of plans
            # shipped to (or inherited by) earlier children is stale
            # and would starve the new ones of their warm start.
            self._shipped = set()
            self._inherited = set()
            if ctx.get_start_method() == "fork":
                # Children forked now inherit every already-compiled plan.
                self._inherited = PLAN_CACHE.keys()
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=ctx
            )
        return self._executor

    def respawn(self, *, kill: bool = False) -> None:
        """Tear down the executor (killing wedged workers when ``kill``)
        so the next submit builds a fresh one with reset plan shipping.
        Safe on a broken executor and a no-op-ish when none exists."""
        executor = self._executor
        self._executor = None
        self._shipped = set()
        self._inherited = set()
        self.generation += 1
        if executor is None:
            return
        if kill:
            # shutdown() would join workers that will never return from
            # a wedged shard; reclaim them first.
            for proc in list(getattr(executor, "_processes", {}).values()):
                with contextlib.suppress(Exception):
                    proc.kill()
        with contextlib.suppress(Exception):
            executor.shutdown(wait=False, cancel_futures=True)

    def plan_payload(self, keys) -> dict | None:
        """The ``PlanCache.snapshot`` payload to attach to this round's
        jobs: plans the pool's workers cannot already have.  Keys ship
        once — callers attach the payload to every job of the round
        that first needs them, and restore() in the worker is an
        idempotent no-op for plans it already holds."""
        wanted = [
            key
            for key in keys
            if key is not None
            and key not in self._shipped
            and key not in self._inherited
        ]
        if not wanted:
            return None
        payload = PLAN_CACHE.snapshot(wanted)
        self._shipped.update(payload)
        return payload or None

    def submit(self, fn, job: dict):
        return self.executor.submit(run_collected, fn, job)

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        self._shipped.clear()
        self._inherited = set()


_POOLS: dict[int, WorkerPool] = {}


def shared_pool(workers: int) -> WorkerPool:
    """The process-wide pool for ``workers`` worker processes."""
    pool = _POOLS.get(workers)
    if pool is None:
        pool = _POOLS[workers] = WorkerPool(workers)
    return pool


def shutdown_pools() -> None:
    for pool in _POOLS.values():
        pool.shutdown()
    _POOLS.clear()
    sweep_orphan_shm()


atexit.register(shutdown_pools)


def as_shm_array(
    shm: shared_memory.SharedMemory, shape: tuple, dtype
) -> np.ndarray:
    """View a segment as an ndarray (no copy)."""
    return np.ndarray(shape, dtype=dtype, buffer=shm.buf)
