"""Common switch interface and routing representation.

Per Section 2 of the paper, a switch operates in two phases:

* **setup**: every input presents its valid bit in the same clock
  cycle; the combinational logic establishes disjoint electrical paths
  from valid inputs to outputs;
* **streaming**: subsequent message bits follow the established paths,
  one bit per clock cycle.

:meth:`ConcentratorSwitch.setup` models the first phase, returning a
:class:`Routing`; :meth:`ConcentratorSwitch.route` models an entire
message transit (setup from the messages' valid bits, then payload
delivery).  Bit-level clocked streaming lives in
:mod:`repro.messages.serial_sim`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro import obs
from repro.core.concentration import ConcentratorSpec, validate_routing_disjoint
from repro.engine.batch import BatchRouting
from repro.errors import ConfigurationError, RoutingError


def _as_bool_bits(arr: np.ndarray) -> np.ndarray:
    """Coerce a valid-bit array to bool, rejecting anything that is not
    a 0/1 value (mirrors :func:`repro.core.nearsort._as_bits`; a silent
    ``astype(bool)`` would truncate arbitrary ints to True)."""
    if arr.dtype != np.bool_ and arr.size and not ((arr == 0) | (arr == 1)).all():
        raise ConfigurationError("valid bits must contain only 0/1 values")
    return arr.astype(bool)


@dataclass(frozen=True)
class Routing:
    """The electrical paths established during one setup cycle.

    ``input_to_output[i]`` is the output wire carrying input ``i``'s
    message (−1 when input ``i`` has no path).  Only valid inputs are
    given paths; paths are always disjoint.
    """

    n_inputs: int
    n_outputs: int
    valid: np.ndarray
    input_to_output: np.ndarray

    def __post_init__(self) -> None:
        if self.valid.shape != (self.n_inputs,):
            raise ConfigurationError("valid bits shape mismatch")
        if self.input_to_output.shape != (self.n_inputs,):
            raise ConfigurationError("routing shape mismatch")
        validate_routing_disjoint(self.input_to_output, self.n_outputs)

    @property
    def routed_count(self) -> int:
        """Number of valid messages with an established path."""
        return int((self.input_to_output[self.valid] >= 0).sum())

    @property
    def dropped_inputs(self) -> np.ndarray:
        """Indices of valid inputs that failed to get a path."""
        return np.flatnonzero(self.valid & (self.input_to_output < 0))

    def output_to_input(self) -> np.ndarray:
        """Inverse map: for each output wire, the input it carries
        (−1 when idle)."""
        inv = np.full(self.n_outputs, -1, dtype=np.int64)
        routed = np.flatnonzero(self.input_to_output >= 0)
        inv[self.input_to_output[routed]] = routed
        return inv

    def output_valid_bits(self) -> np.ndarray:
        """The valid bits as seen on the output wires."""
        out = np.zeros(self.n_outputs, dtype=bool)
        targets = self.input_to_output[self.valid]
        out[targets[targets >= 0]] = True
        return out


class ConcentratorSwitch(ABC):
    """Abstract base for every concentrator switch in the library."""

    #: Subclasses set these in ``__init__``.
    n: int
    m: int

    @property
    @abstractmethod
    def spec(self) -> ConcentratorSpec:
        """The (n, m, α) specification this switch guarantees."""

    @abstractmethod
    def setup(self, valid: np.ndarray) -> Routing:
        """Establish paths for one setup cycle of valid bits."""

    def _check_valid(self, valid: np.ndarray) -> np.ndarray:
        arr = np.asarray(valid)
        if arr.shape != (self.n,):
            raise ConfigurationError(
                f"expected {self.n} valid bits, got shape {arr.shape}"
            )
        return _as_bool_bits(arr)

    def _check_valid_batch(self, valid: np.ndarray) -> np.ndarray:
        arr = np.asarray(valid)
        if arr.ndim == 1:
            arr = arr[None, :]
        if arr.ndim != 2 or arr.shape[1] != self.n:
            raise ConfigurationError(
                f"expected a (B, {self.n}) batch of valid bits, "
                f"got shape {np.asarray(valid).shape}"
            )
        return _as_bool_bits(arr)

    def setup_batch(self, valid: np.ndarray) -> BatchRouting:
        """Establish paths for ``B`` independent setup cycles at once.

        ``valid`` is a ``(B, n)`` bool array, one trial per row.  The
        base implementation loops over :meth:`setup` (correct for every
        switch); subclasses override :meth:`_setup_batch` with true
        vectorized execution.  Either way ``setup_batch(V)[i]`` equals
        ``setup(V[i])``.
        """
        valid2d = self._check_valid_batch(valid)
        reg = obs.get_registry()
        if reg.enabled:
            label = type(self).__name__
            reg.counter("engine.batch_setups", switch=label).inc()
            reg.counter("engine.batch_trials", switch=label).inc(valid2d.shape[0])
        return self._setup_batch(valid2d)

    def _setup_batch(self, valid: np.ndarray) -> BatchRouting:
        """Generic loop fallback; ``valid`` is pre-checked (B, n) bool."""
        if valid.shape[0]:
            routing = np.stack(
                [self.setup(row).input_to_output for row in valid]
            )
        else:
            routing = np.empty((0, self.n), dtype=np.int64)
        return BatchRouting(
            n_inputs=self.n, n_outputs=self.m, valid=valid, input_to_output=routing
        )

    def route(self, messages: Sequence[object | None]) -> list[object | None]:
        """Route whole messages: ``messages[i]`` is input i's payload or
        None for an invalid message.  Returns the m output slots."""
        if len(messages) != self.n:
            raise RoutingError(f"expected {self.n} input messages, got {len(messages)}")
        valid = np.array([msg is not None for msg in messages], dtype=bool)
        routing = self.setup(valid)
        reg = obs.get_registry()
        if reg.enabled:
            label = type(self).__name__
            reg.counter("switch.route_calls", switch=label).inc()
            reg.counter("switch.valid_in", switch=label).inc(int(valid.sum()))
            reg.counter("switch.routed_out", switch=label).inc(routing.routed_count)
        out_to_in = routing.output_to_input()
        return [messages[i] if i >= 0 else None for i in out_to_in]


@dataclass
class StageReport:
    """Bookkeeping for one stage of a multichip switch (used by the
    hardware model and the 2-D/3-D layout reproductions)."""

    name: str
    chip_count: int
    chip_inputs: int
    wiring: str = "identity"
    extras: dict = field(default_factory=dict)
