"""The Columnsort-based multichip partial concentrator switch (Section 5).

An ``(n, m, 1 − (s−1)²/m)`` partial concentrator built from two stages
of ``s`` hyperconcentrator chips, each ``r``-by-``r`` (``n = r·s``,
``s | r``):

* **stage 1** — one chip per matrix column; sorts the valid bits of
  each column (Algorithm 2, step 1);
* **reshuffle wiring** — output ``Y_{1,j,i}`` → input
  ``X_{2,(r·j+i) mod s, ⌊(r·j+i)/s⌋}`` (the ``RM⁻¹∘CM`` conversion of
  step 2);
* **stage 2** — one chip per column of the reshuffled matrix (step 3).

The m output wires are the first m final positions in row-major order.
By Theorem 4 the valid bits are ``(s−1)²``-nearsorted in row-major
order, so Lemma 2 gives load ratio ``1 − (s−1)²/m`` exactly.

β-parametrisation (Table 1): with ``r = Θ(n^β)`` and ``s = Θ(n^{1−β})``
for ``1/2 ≤ β ≤ 1``, the switch has ``Θ(n^β)`` data pins per chip,
``Θ(n^{1−β})`` chips, volume ``Θ(n^{1+β})``, delay ``4β lg n + O(1)``
gates, and load ratio ``1 − O(n^{2−2β}/m)``.
"""

from __future__ import annotations

import numpy as np

from repro.core.concentration import ConcentratorSpec, lemma2_load_ratio
from repro.engine import (
    BatchRouting,
    StagePlan,
    chip_layer,
    fixed_permutation,
    plan_cache,
    concentrate_plan_batch,
    run_plan,
)
from repro.errors import ConfigurationError
from repro.mesh.columnsort import (
    columnsort_epsilon_bound,
    columnsort_shape_for_beta,
    validate_columnsort_shape,
)
from repro.mesh.order import cm_to_rm_permutation
from repro.switches.base import ConcentratorSwitch, Routing, StageReport
from repro.switches.hyperconcentrator import Hyperconcentrator
from repro.switches.wiring import apply_chip_layer, column_groups, compose


def _build_columnsort_plan(r: int, s: int) -> StagePlan:
    """Compile Algorithm 2's two chip stages around the ``RM⁻¹∘CM``
    reshuffle wiring."""
    cols = chip_layer(column_groups(r, s))
    reshuffle = fixed_permutation(cm_to_rm_permutation(r, s))
    return StagePlan(key=("columnsort", r, s), n=r * s, ops=(cols, reshuffle, cols))


class ColumnsortSwitch(ConcentratorSwitch):
    """Section 5's two-stage Columnsort-based partial concentrator.

    Parameters
    ----------
    r, s:
        Matrix shape: ``r`` rows (chip size) and ``s`` columns (chips
        per stage); ``s`` must evenly divide ``r``.
    m:
        Number of output wires, ``1 ≤ m ≤ r·s``.
    """

    STAGES = 2

    def __init__(self, r: int, s: int, m: int):
        validate_columnsort_shape(r, s)
        n = r * s
        if not 1 <= m <= n:
            raise ConfigurationError(f"need 1 <= m <= n, got n={n}, m={m}")
        self.r = r
        self.s = s
        self.n = n
        self.m = m
        self._chip = Hyperconcentrator(r)

    @property
    def _plan(self) -> StagePlan:
        """The compiled stage plan, shared by every (r, s) instance via
        the process-wide plan cache.  Built lazily: resource-model
        queries on very large switches must not allocate the O(n) wire
        arrays."""
        return plan_cache().get_or_build(
            ("columnsort", self.r, self.s),
            lambda: _build_columnsort_plan(self.r, self.s),
        )

    @property
    def _groups(self) -> list:
        return list(self._plan.ops[0].groups)

    @property
    def _reshuffle(self):
        return self._plan.ops[1].perm

    @classmethod
    def from_beta(cls, n: int, beta: float, m: int) -> "ColumnsortSwitch":
        """Instantiate the β point of the Table 1 continuum for an
        n-input switch (n a power of two)."""
        r, s = columnsort_shape_for_beta(n, beta)
        return cls(r, s, m)

    # -- behaviour ------------------------------------------------------

    @property
    def epsilon_bound(self) -> int:
        """Theorem 4's exact nearsorting bound ``(s−1)²``."""
        return columnsort_epsilon_bound(self.s)

    @property
    def spec(self) -> ConcentratorSpec:
        """The guaranteed ``(n, m, 1 − (s−1)²/m)`` spec (α clamped to 0
        when vacuous at small sizes)."""
        return ConcentratorSpec(
            n=self.n, m=self.m, alpha=lemma2_load_ratio(self.m, self.epsilon_bound)
        )

    def stage_permutations(self, valid: np.ndarray) -> list[np.ndarray]:
        """Per-layer position permutations: stage-1 chips, the
        ``RM⁻¹∘CM`` wiring, stage-2 chips."""
        valid = self._check_valid(valid)
        perms: list[np.ndarray] = []
        current = valid.copy()

        p1 = apply_chip_layer(current, self._groups)
        current = _permute_bits(current, p1)
        perms.append(p1)

        perms.append(self._reshuffle)
        current = _permute_bits(current, self._reshuffle)

        p2 = apply_chip_layer(current, self._groups)
        perms.append(p2)
        return perms

    def final_positions(self, valid: np.ndarray) -> np.ndarray:
        """Flat row-major position of each input after both stages."""
        return compose(self.stage_permutations(valid))

    def final_positions_batch(self, valid: np.ndarray) -> np.ndarray:
        """Batched :meth:`final_positions` over ``(B, n)`` trials;
        entries for invalid inputs are unspecified."""
        return run_plan(self._plan, self._check_valid_batch(valid))

    def setup(self, valid: np.ndarray) -> Routing:
        valid = self._check_valid(valid)
        final = self.final_positions(valid)
        routing = np.where(valid & (final < self.m), final, -1)
        return Routing(
            n_inputs=self.n, n_outputs=self.m, valid=valid, input_to_output=routing
        )

    def _setup_batch(self, valid: np.ndarray) -> BatchRouting:
        routing = concentrate_plan_batch(self._plan, valid, self.m)
        return BatchRouting(
            n_inputs=self.n, n_outputs=self.m, valid=valid, input_to_output=routing
        )

    # -- resource model (Section 5 / Table 1 figures) --------------------

    @property
    def beta(self) -> float:
        """The effective β of this shape: ``lg r / lg n`` (matches the
        parametrisation ``r = n^β`` for power-of-two shapes)."""
        import math

        return math.log2(self.r) / math.log2(self.n) if self.n > 1 else 1.0

    @property
    def chip_count(self) -> int:
        """``2s = Θ(n^{1−β})`` hyperconcentrator chips."""
        return self.STAGES * self.s

    @property
    def data_pins_per_chip(self) -> int:
        """``2r = Θ(n^β)`` data pins per chip."""
        return 2 * self.r

    @property
    def gate_delays(self) -> int:
        """Message delay: two chips at ``2⌈lg r⌉ + O(1)`` each —
        ``4β lg n + O(1)`` total."""
        return self.STAGES * self._chip.gate_delays

    @property
    def interstack_connectors(self) -> int:
        """``s²`` wiring-only connectors in the 3-D packaging
        (Figure 7), each transposing ``r/s`` wires."""
        return self.s * self.s

    def stage_reports(self) -> list[StageReport]:
        return [
            StageReport("stage1-columns", self.s, self.r, wiring="cm-to-rm"),
            StageReport("stage2-columns", self.s, self.r, wiring="output"),
        ]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ColumnsortSwitch(r={self.r}, s={self.s}, m={self.m})"


def _permute_bits(bits: np.ndarray, perm: np.ndarray) -> np.ndarray:
    out = np.empty_like(bits)
    out[perm] = bits
    return out
