"""Multi-pass Columnsort switches — exploring Section 6's open question.

"Rather than wondering how fast a multichip hyperconcentrator switch we
can build, we might ask for what functions f(p) can we build an
(Ω(f(p)), m, 1 − o(p/m)) partial concentrator switch, given chips with
p pins and using only two stages of chips.  The Columnsort-based
construction, for example, gives us f(p) = p^{2−ε} for any 0 < ε ≤ 1.
Can we achieve f(p) = Ω(p²)?  In general, how large a function f(p)
can we achieve with k stages?"

:class:`IteratedColumnsortSwitch` generalises the Section 5 switch to
``k`` passes, alternating Columnsort's two reshuffles (pass 1 uses
CM→RM, pass 2 RM→CM, pass 3 CM→RM, …) with a column-sort chip stage
before each and one after — ``k+1`` chip stages total.  The outputs
are read in row-major order after an odd number of passes and
column-major order after an even number (following the last
reshuffle's orientation).  Each extra pass sharply reduces the
worst-case nearsortedness ε of the output (measured by
``bench_open_question.py``: e.g. r=64, s=8 gives ε = 41, 34, 7, 4 for
k = 1..4 against Theorem 4's 49), so for a fixed pin count p = 2r,
more stages buy a larger realisable n at the same load-ratio slack —
a concrete data point for the open question.

Repeating the *same* reshuffle instead of alternating does NOT
converge (ε oscillates); the regression test pins this down.

The ``k = 1`` instance is exactly the Section 5 two-stage switch.
"""

from __future__ import annotations

import numpy as np

from repro.core.concentration import ConcentratorSpec, lemma2_load_ratio
from repro.core.nearsort import nearsortedness
from repro.engine import (
    BatchRouting,
    StagePlan,
    chip_layer,
    fixed_permutation,
    plan_cache,
    run_plan,
    run_plan_sparse,
)
from repro.errors import ConfigurationError
from repro.mesh.columnsort import validate_columnsort_shape
from repro.mesh.grid import sort_columns
from repro.mesh.order import cm_to_rm_permutation
from repro.switches.base import ConcentratorSwitch, Routing
from repro.switches.hyperconcentrator import Hyperconcentrator
from repro.switches.wiring import apply_chip_layer, column_groups, compose


def _build_iterated_plan(r: int, s: int, passes: int) -> StagePlan:
    """Compile the k-pass pipeline: (chips, alternating reshuffle) × k
    plus the final chip stage (readout conversion happens outside)."""
    cols = chip_layer(column_groups(r, s))
    fwd = cm_to_rm_permutation(r, s)
    inv = np.empty_like(fwd)
    inv[fwd] = np.arange(fwd.size, dtype=np.int64)
    shuffles = (fixed_permutation(fwd), fixed_permutation(inv))
    ops: list = []
    for k in range(passes):
        ops += [cols, shuffles[k % 2]]
    ops.append(cols)
    return StagePlan(key=("iterated-columnsort", r, s, passes), n=r * s, ops=tuple(ops))


class IteratedColumnsortSwitch(ConcentratorSwitch):
    """A ``k``-pass Columnsort partial concentrator: ``k`` rounds of
    (column-sort stage, CM→RM wiring) followed by one final
    column-sort stage — ``k+1`` chip stages, ``k`` wiring layers.

    Parameters
    ----------
    r, s:
        Matrix shape, ``s | r``.
    m:
        Output wires.
    passes:
        ``k ≥ 1``; ``k = 1`` reproduces :class:`ColumnsortSwitch`.
    """

    def __init__(self, r: int, s: int, m: int, passes: int = 1):
        validate_columnsort_shape(r, s)
        if passes < 1:
            raise ConfigurationError(f"need at least one pass, got {passes}")
        n = r * s
        if not 1 <= m <= n:
            raise ConfigurationError(f"need 1 <= m <= n, got n={n}, m={m}")
        self.r = r
        self.s = s
        self.n = n
        self.m = m
        self.passes = passes
        self._chip = Hyperconcentrator(r)

    @property
    def _plan(self) -> StagePlan:
        return plan_cache().get_or_build(
            ("iterated-columnsort", self.r, self.s, self.passes),
            lambda: _build_iterated_plan(self.r, self.s, self.passes),
        )

    @property
    def _groups(self) -> list:
        return list(self._plan.ops[0].groups)

    @property
    def _reshuffle(self):
        """The two alternating reshuffles: index 0 = CM→RM (odd
        passes), index 1 = RM→CM (even passes)."""
        fwd = self._plan.ops[1].perm
        if self.passes >= 2:
            return (fwd, self._plan.ops[3].perm)
        inv = np.empty_like(fwd)
        inv[fwd] = np.arange(fwd.size, dtype=np.int64)
        inv.setflags(write=False)
        return (fwd, inv)

    @property
    def readout(self) -> str:
        """Output ordering: ``"rm"`` after an odd number of passes
        (last reshuffle was CM→RM), ``"cm"`` after an even number."""
        return "rm" if self.passes % 2 == 1 else "cm"

    # -- behaviour ------------------------------------------------------

    def matrix_pipeline(self, matrix: np.ndarray) -> np.ndarray:
        """The algorithmic view: k × (sort columns; alternating
        reshuffle) + final column sort, on an ``r × s`` 0/1 matrix."""
        arr = np.asarray(matrix)
        r, s = self.r, self.s
        for k in range(self.passes):
            arr = sort_columns(arr)
            if k % 2 == 0:
                arr = arr.T.reshape(r, s)         # CM -> RM
            else:
                arr = arr.reshape(s, r).T.copy()  # RM -> CM
        return sort_columns(arr)

    def output_sequence(self, matrix: np.ndarray) -> np.ndarray:
        """The flat output-wire reading of the pipeline result (row- or
        column-major per :attr:`readout`)."""
        out = self.matrix_pipeline(matrix)
        return (out if self.readout == "rm" else out.T).reshape(-1)

    def stage_permutations(self, valid: np.ndarray) -> list[np.ndarray]:
        valid = self._check_valid(valid)
        perms: list[np.ndarray] = []
        current = valid.copy()
        for k in range(self.passes):
            p = apply_chip_layer(current, self._groups)
            out = np.empty_like(current)
            out[p] = current
            current = out
            perms.append(p)

            shuffle = self._reshuffle[k % 2]
            perms.append(shuffle)
            out = np.empty_like(current)
            out[shuffle] = current
            current = out
        perms.append(apply_chip_layer(current, self._groups))
        return perms

    def final_positions(self, valid: np.ndarray) -> np.ndarray:
        """Final *output-wire index* of each input: the flat matrix
        position converted to the readout ordering."""
        flat = compose(self.stage_permutations(valid))
        if self.readout == "rm":
            return flat
        # Convert flat row-major position p = s·i + j to CM = r·j + i.
        i, j = flat // self.s, flat % self.s
        return self.r * j + i

    def final_positions_batch(self, valid: np.ndarray) -> np.ndarray:
        """Batched :meth:`final_positions` over ``(B, n)`` trials, in
        the readout ordering; entries for invalid inputs are
        unspecified."""
        flat = run_plan(self._plan, self._check_valid_batch(valid))
        if self.readout == "rm":
            return flat
        i, j = flat // self.s, flat % self.s
        return self.r * j + i

    def setup(self, valid: np.ndarray) -> Routing:
        valid = self._check_valid(valid)
        final = self.final_positions(valid)
        routing = np.where(valid & (final < self.m), final, -1)
        return Routing(
            n_inputs=self.n, n_outputs=self.m, valid=valid, input_to_output=routing
        )

    def _setup_batch(self, valid: np.ndarray) -> BatchRouting:
        rows, cols, flat = run_plan_sparse(self._plan, valid)
        if self.readout == "rm":
            final = flat
        else:
            i, j = flat // self.s, flat % self.s
            final = self.r * j + i
        routing = np.full(valid.shape, -1, dtype=np.int64)
        routing[rows, cols] = np.where(final < self.m, final, -1)
        return BatchRouting(
            n_inputs=self.n, n_outputs=self.m, valid=valid, input_to_output=routing
        )

    def measured_epsilon(self, trials: int, rng: np.random.Generator) -> int:
        """Worst output-order nearsortedness over random inputs — the
        empirical ε this switch would plug into Lemma 2."""
        worst = 0
        for _ in range(trials):
            valid = rng.random(self.n) < rng.random()
            seq = self.output_sequence(valid.astype(np.int8).reshape(self.r, self.s))
            worst = max(worst, nearsortedness(seq))
        return worst

    @property
    def epsilon_bound(self) -> int:
        """Theorem 4's bound applies to the FIRST pass; further passes
        only improve it, so (s−1)² remains a safe bound."""
        return (self.s - 1) ** 2

    @property
    def spec(self) -> ConcentratorSpec:
        return ConcentratorSpec(
            n=self.n, m=self.m, alpha=lemma2_load_ratio(self.m, self.epsilon_bound)
        )

    # -- resource model ---------------------------------------------------

    @property
    def chip_stages(self) -> int:
        return self.passes + 1

    @property
    def chip_count(self) -> int:
        return self.chip_stages * self.s

    @property
    def data_pins_per_chip(self) -> int:
        return 2 * self.r

    @property
    def gate_delays(self) -> int:
        return self.chip_stages * self._chip.gate_delays

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"IteratedColumnsortSwitch(r={self.r}, s={self.s}, m={self.m}, "
            f"passes={self.passes})"
        )
