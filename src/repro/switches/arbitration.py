"""Arbitration policies for congested concentrators.

A concentrator's contract says nothing about *which* k − m messages
lose when k > m.  The rank-based chips of this library always favour
low-index inputs — simple and combinational, but starvation-prone under
sustained overload (input n−1 loses every round).  This module adds a
rotating-priority wrapper: each setup starts the rank count at a
different offset, spreading losses evenly, at the cost of lg n extra
control state (the rotation counter) — the same trade the paper's BTR
sibling project makes with its token-passing arbiter.

:class:`RotatingPriorityConcentrator` wraps any inner switch factory;
fairness is quantified in the tests and the network bench.
"""

from __future__ import annotations

import numpy as np

from repro.core.concentration import ConcentratorSpec
from repro.errors import ConfigurationError
from repro.switches.base import ConcentratorSwitch, Routing
from repro.switches.hyperconcentrator import hyperconcentrate_routing


class RotatingPriorityConcentrator(ConcentratorSwitch):
    """An n-by-m concentrator whose priority order rotates every setup.

    Setup t treats input ``(i − offset_t) mod n`` as rank position i,
    with ``offset_t`` advancing by ``stride`` each setup.  Behaviour
    (the (n, m, 1) perfect contract) is unchanged; only the identity
    of the losers under congestion rotates.
    """

    def __init__(self, n: int, m: int, stride: int = 1):
        if not 1 <= m <= n:
            raise ConfigurationError(f"need 1 <= m <= n, got n={n}, m={m}")
        if stride < 0:
            raise ConfigurationError(f"stride must be non-negative, got {stride}")
        self.n = n
        self.m = m
        self.stride = stride
        self._offset = 0

    @property
    def spec(self) -> ConcentratorSpec:
        return ConcentratorSpec(n=self.n, m=self.m, alpha=1.0)

    @property
    def offset(self) -> int:
        """The rotation applied to the *next* setup."""
        return self._offset

    def setup(self, valid: np.ndarray) -> Routing:
        valid = self._check_valid(valid)
        offset = self._offset
        self._offset = (self._offset + self.stride) % self.n

        order = (np.arange(self.n) + offset) % self.n  # priority order
        rotated_valid = valid[order]
        rotated_routing = hyperconcentrate_routing(rotated_valid)
        routing = np.full(self.n, -1, dtype=np.int64)
        routing[order] = rotated_routing
        routing[routing >= self.m] = -1
        return Routing(
            n_inputs=self.n, n_outputs=self.m, valid=valid, input_to_output=routing
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"RotatingPriorityConcentrator(n={self.n}, m={self.m}, "
            f"stride={self.stride})"
        )


def starvation_profile(
    switch: ConcentratorSwitch,
    rounds: int,
    load: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-input loss counts under sustained Bernoulli overload — the
    fairness measurement: a flat profile is fair, a step profile means
    the high indices starve."""
    losses = np.zeros(switch.n, dtype=np.int64)
    for _ in range(rounds):
        valid = rng.random(switch.n) < load
        routing = switch.setup(valid)
        losers = valid & (routing.input_to_output < 0)
        losses += losers
    return losses
