"""n-by-m perfect concentrator from a hyperconcentrator (Section 1).

"We can make any n-by-m perfect concentrator switch from an n-by-n
hyperconcentrator switch by simply choosing the first m output wires."
"""

from __future__ import annotations

import numpy as np

from repro.core.concentration import ConcentratorSpec
from repro.engine.batch import BatchRouting, hyperconcentrate_batch
from repro.errors import ConfigurationError
from repro.switches.base import ConcentratorSwitch, Routing
from repro.switches.hyperconcentrator import Hyperconcentrator


class PerfectConcentrator(ConcentratorSwitch):
    """An n-by-m perfect concentrator switch.

    With k valid messages: all are routed when k ≤ m, and every output
    carries a message when k > m (the overflow k − m messages get no
    path and are handled by a congestion policy upstream).
    """

    def __init__(self, n: int, m: int):
        if not 1 <= m <= n:
            raise ConfigurationError(f"need 1 <= m <= n, got n={n}, m={m}")
        self.n = n
        self.m = m
        self._hyper = Hyperconcentrator(n)

    @property
    def spec(self) -> ConcentratorSpec:
        return ConcentratorSpec(n=self.n, m=self.m, alpha=1.0)

    @property
    def hyperconcentrator(self) -> Hyperconcentrator:
        """The underlying n-by-n hyperconcentrator chip."""
        return self._hyper

    def setup(self, valid: np.ndarray) -> Routing:
        valid = self._check_valid(valid)
        inner = self._hyper.setup(valid).input_to_output
        # Keep only paths that land on the first m outputs.
        routing = np.where(inner < self.m, inner, -1)
        return Routing(
            n_inputs=self.n, n_outputs=self.m, valid=valid, input_to_output=routing
        )

    def _setup_batch(self, valid: np.ndarray) -> BatchRouting:
        inner = hyperconcentrate_batch(valid)
        routing = np.where(inner < self.m, inner, -1)
        return BatchRouting(
            n_inputs=self.n, n_outputs=self.m, valid=valid, input_to_output=routing
        )

    @property
    def gate_delays(self) -> int:
        """Delay equals the underlying hyperconcentrator's."""
        return self._hyper.gate_delays

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"PerfectConcentrator(n={self.n}, m={self.m})"
