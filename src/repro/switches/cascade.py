"""Cascading concentrator switches.

Multistage networks (funnels, fat-trees) chain concentrators: the m
outputs of one feed the n inputs of the next.  The guarantee composes
cleanly — if A is (n₁, m₁, α₁) and B is (m₁, m₂, α₂), then for any
k ≤ min(α₁m₁, α₂m₂) every message survives both hops, so the cascade
is an (n₁, m₂, min(α₁m₁, α₂m₂)/m₂) partial concentrator.

:class:`CascadeSwitch` implements the composition as a switch in its
own right (setup chains the two routings), carrying the derived spec;
the tests validate the composed contract against the usual validators,
so the algebra is checked behaviourally, not just on paper.
"""

from __future__ import annotations

import numpy as np

from repro.core.concentration import ConcentratorSpec
from repro.engine.batch import BatchRouting
from repro.errors import ConfigurationError
from repro.switches.base import ConcentratorSwitch, Routing


def cascade_spec(a: ConcentratorSpec, b: ConcentratorSpec) -> ConcentratorSpec:
    """The spec of A followed by B (requires ``b.n == a.m``)."""
    if b.n != a.m:
        raise ConfigurationError(
            f"cannot cascade: first stage has {a.m} outputs, second expects {b.n}"
        )
    guaranteed = min(a.guaranteed_capacity, b.guaranteed_capacity)
    return ConcentratorSpec(n=a.n, m=b.m, alpha=guaranteed / b.m)


class CascadeSwitch(ConcentratorSwitch):
    """Two concentrator switches wired back to back."""

    def __init__(self, first: ConcentratorSwitch, second: ConcentratorSwitch):
        if second.n != first.m:
            raise ConfigurationError(
                f"cannot cascade: first stage has {first.m} outputs, "
                f"second expects {second.n} inputs"
            )
        self.first = first
        self.second = second
        self.n = first.n
        self.m = second.m

    @property
    def spec(self) -> ConcentratorSpec:
        return cascade_spec(self.first.spec, self.second.spec)

    def setup(self, valid: np.ndarray) -> Routing:
        valid = self._check_valid(valid)
        r1 = self.first.setup(valid)
        mid_valid = r1.output_valid_bits()
        r2 = self.second.setup(mid_valid)
        routing = np.full(self.n, -1, dtype=np.int64)
        through = valid & (r1.input_to_output >= 0)
        routing[through] = r2.input_to_output[r1.input_to_output[through]]
        return Routing(
            n_inputs=self.n, n_outputs=self.m, valid=valid, input_to_output=routing
        )

    def _setup_batch(self, valid: np.ndarray) -> BatchRouting:
        r1 = self.first.setup_batch(valid)
        r2 = self.second.setup_batch(r1.output_valid_bits())
        through = valid & (r1.input_to_output >= 0)
        mid = np.where(through, r1.input_to_output, 0)
        chained = np.take_along_axis(r2.input_to_output, mid, axis=1)
        routing = np.where(through, chained, -1)
        return BatchRouting(
            n_inputs=self.n, n_outputs=self.m, valid=valid, input_to_output=routing
        )

    @property
    def gate_delays(self) -> int:
        total = 0
        for stage in (self.first, self.second):
            delays = getattr(stage, "gate_delays", None)
            if delays is None:
                raise ConfigurationError(
                    f"{type(stage).__name__} exposes no gate-delay model"
                )
            total += delays
        return total

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"CascadeSwitch({self.first!r} -> {self.second!r})"
