"""Bitonic comparator networks as concentrators — the paper's last
open question.

"There may be ε-nearsorters based on networks other than the
two-dimensional mesh to which we can apply Lemma 2.  What types of
partial concentrator switches can we build by applying Lemma 2 to
other ε-nearsorters?" (Section 6.)

This module explores one concrete family: Batcher's bitonic sorting
network over the valid bits.

* :class:`BitonicHyperconcentrator` — the full network: a 0-nearsorter,
  hence an n-by-n hyperconcentrator.  Its depth is ``lg n (lg n + 1)/2``
  comparator stages — *quadratically* worse in lg n than the
  Cormen–Leiserson chip's 2 lg n, which is exactly why the paper
  builds a dedicated hyperconcentrator instead of dropping a sorting
  network in (the ablation bench quantifies this).
* :class:`TruncatedBitonicSwitch` — only the first ``stages`` comparator
  stages: an ε-nearsorter for a measured ε, pluggable into Lemma 2 as
  a partial concentrator.  The bench maps the stages → ε tradeoff,
  giving a non-mesh data point for the open question.

Comparators operate on (valid bit, message) pairs with 1 > 0 and no
exchange on ties, so routing is deterministic and every path is
physical (each comparator is a 2×2 switch).
"""

from __future__ import annotations

import numpy as np

from repro._util.bits import ilg
from repro.core.concentration import ConcentratorSpec, lemma2_load_ratio
from repro.engine import (
    BatchRouting,
    ComparatorPlan,
    comparator_stages,
    plan_cache,
    run_comparator_plan,
)
from repro.errors import ConfigurationError
from repro.switches.base import ConcentratorSwitch, Routing

Comparator = tuple[int, int]  # (i, j): wire i should carry the larger bit


def _bitonic_plan(n: int) -> ComparatorPlan:
    """The full bitonic network compiled to index arrays, cached per n.
    Truncated switches slice a prefix of the same cached stages."""
    return plan_cache().get_or_build(
        ("bitonic", n),
        lambda: comparator_stages(("bitonic", n), n, bitonic_stages(n) if n > 1 else []),
    )


def bitonic_stages(n: int) -> list[list[Comparator]]:
    """The comparator stages of Batcher's bitonic sorter for ``n = 2^q``
    wires, sorting into *nonincreasing* order.

    Stage list follows the standard k/j double loop: ``q(q+1)/2``
    stages of ``n/2`` parallel comparators each.
    """
    q = ilg(n)
    stages: list[list[Comparator]] = []
    for k_exp in range(1, q + 1):
        k = 1 << k_exp
        j = k >> 1
        while j >= 1:
            stage: list[Comparator] = []
            for i in range(n):
                partner = i ^ j
                if partner > i:
                    # Direction: blocks of size k alternate; for a
                    # nonincreasing overall sort the first block keeps
                    # larger values on the lower index.
                    descending = (i & k) == 0
                    if descending:
                        stage.append((i, partner))
                    else:
                        stage.append((partner, i))
            stages.append(stage)
            j >>= 1
    return stages


def apply_comparator_stages(
    valid: np.ndarray, stages: list[list[Comparator]]
) -> np.ndarray:
    """Run the comparator network on the valid bits, tracking where
    each input wire's message ends up.  Returns ``position_of`` with
    ``position_of[i]`` = final wire of input i.

    A comparator (hi, lo) puts the larger bit on ``hi``; ties do not
    exchange, so messages never swap gratuitously.
    """
    bits = np.asarray(valid, dtype=np.int8).copy()
    position_of = np.arange(bits.size, dtype=np.int64)
    wire_holds = np.arange(bits.size, dtype=np.int64)  # wire -> input index
    for stage in stages:
        for hi, lo in stage:
            if bits[hi] < bits[lo]:
                bits[hi], bits[lo] = bits[lo], bits[hi]
                a, b = wire_holds[hi], wire_holds[lo]
                wire_holds[hi], wire_holds[lo] = b, a
                position_of[a], position_of[b] = lo, hi
    return position_of


class BitonicHyperconcentrator(ConcentratorSwitch):
    """An n-by-n hyperconcentrator realised as a full bitonic sorting
    network over the valid bits (n a power of two)."""

    def __init__(self, n: int):
        if n < 1:
            raise ConfigurationError(f"size must be positive, got {n}")
        if n > 1:
            ilg(n)
        self.n = n
        self.m = n
        self._stages = bitonic_stages(n) if n > 1 else []

    @property
    def spec(self) -> ConcentratorSpec:
        return ConcentratorSpec(n=self.n, m=self.n, alpha=1.0)

    @property
    def comparator_stages(self) -> int:
        """Depth: ``lg n (lg n + 1)/2`` stages."""
        return len(self._stages)

    @property
    def comparator_count(self) -> int:
        return sum(len(stage) for stage in self._stages)

    @property
    def gate_delays(self) -> int:
        """Two gate levels per comparator stage (compare + exchange)."""
        return 2 * self.comparator_stages

    def setup(self, valid: np.ndarray) -> Routing:
        valid = self._check_valid(valid)
        final = apply_comparator_stages(valid, self._stages)
        routing = np.where(valid, final, -1)
        return Routing(
            n_inputs=self.n, n_outputs=self.n, valid=valid, input_to_output=routing
        )

    def _setup_batch(self, valid: np.ndarray) -> BatchRouting:
        final = run_comparator_plan(_bitonic_plan(self.n), valid)
        routing = np.where(valid, final, -1)
        return BatchRouting(
            n_inputs=self.n, n_outputs=self.n, valid=valid, input_to_output=routing
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"BitonicHyperconcentrator(n={self.n})"


class TruncatedBitonicSwitch(ConcentratorSwitch):
    """The first ``stages`` comparator stages of the bitonic network,
    restricted to m outputs: an ε-nearsorter → Lemma 2 partial
    concentrator with an *empirically calibrated* ε.

    ``epsilon`` must be supplied (e.g. from
    :meth:`calibrate_epsilon`); the switch then carries the Lemma 2
    spec ``(n, m, 1 − ε/m)``, and the validators check it like any
    other switch in the library.
    """

    def __init__(self, n: int, m: int, stages: int, epsilon: int):
        if n < 1:
            raise ConfigurationError(f"size must be positive, got {n}")
        if n > 1:
            ilg(n)
        full = bitonic_stages(n) if n > 1 else []
        if not 0 <= stages <= len(full):
            raise ConfigurationError(
                f"stages must be in [0, {len(full)}], got {stages}"
            )
        if not 1 <= m <= n:
            raise ConfigurationError(f"need 1 <= m <= n, got n={n}, m={m}")
        if epsilon < 0:
            raise ConfigurationError(f"epsilon must be non-negative, got {epsilon}")
        self.n = n
        self.m = m
        self.stages = stages
        self.epsilon = epsilon
        self._stages = full[:stages]

    @classmethod
    def calibrate_epsilon(
        cls, n: int, stages: int, trials: int, rng: np.random.Generator
    ) -> int:
        """Measured worst-case ε of the truncated network over random
        valid bits (callers should add safety margin or use the
        adversarial search for design sign-off)."""
        from repro.core.nearsort import nearsortedness

        full = bitonic_stages(n) if n > 1 else []
        prefix = full[:stages]
        worst = 0
        for _ in range(trials):
            valid = rng.random(n) < rng.random()
            final = apply_comparator_stages(valid, prefix)
            out = np.zeros(n, dtype=np.int8)
            out[final] = valid.astype(np.int8)
            worst = max(worst, nearsortedness(out))
        return worst

    @property
    def spec(self) -> ConcentratorSpec:
        return ConcentratorSpec(
            n=self.n, m=self.m, alpha=lemma2_load_ratio(self.m, self.epsilon)
        )

    @property
    def gate_delays(self) -> int:
        return 2 * self.stages

    def final_positions(self, valid: np.ndarray) -> np.ndarray:
        valid = self._check_valid(valid)
        return apply_comparator_stages(valid, self._stages)

    def final_positions_batch(self, valid: np.ndarray) -> np.ndarray:
        """Batched :meth:`final_positions` over ``(B, n)`` trials."""
        full = _bitonic_plan(self.n)
        prefix = ComparatorPlan(
            key=full.key, n=full.n, stages=full.stages[: self.stages]
        )
        return run_comparator_plan(prefix, self._check_valid_batch(valid))

    @property
    def epsilon_bound(self) -> int:
        """The calibrated ε (plays the role Theorems 3/4 play for the
        mesh switches)."""
        return self.epsilon

    def setup(self, valid: np.ndarray) -> Routing:
        valid = self._check_valid(valid)
        final = self.final_positions(valid)
        routing = np.where(valid & (final < self.m), final, -1)
        return Routing(
            n_inputs=self.n, n_outputs=self.m, valid=valid, input_to_output=routing
        )

    def _setup_batch(self, valid: np.ndarray) -> BatchRouting:
        full = _bitonic_plan(self.n)
        prefix = ComparatorPlan(
            key=full.key, n=full.n, stages=full.stages[: self.stages]
        )
        final = run_comparator_plan(prefix, valid)
        routing = np.where(valid & (final < self.m), final, -1)
        return BatchRouting(
            n_inputs=self.n, n_outputs=self.m, valid=valid, input_to_output=routing
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"TruncatedBitonicSwitch(n={self.n}, m={self.m}, "
            f"stages={self.stages}, eps={self.epsilon})"
        )
