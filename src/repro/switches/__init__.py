"""Concentrator switch implementations.

Single-chip building block:

* :class:`~repro.switches.hyperconcentrator.Hyperconcentrator` — the
  Cormen–Leiserson n-by-n hyperconcentrator (functional model; the
  gate-level netlist lives in :mod:`repro.gates.hyperconc_gates`).
* :class:`~repro.switches.perfect.PerfectConcentrator` — n-by-m perfect
  concentrator obtained by keeping the first m hyperconcentrator
  outputs (Section 1).

Multichip partial concentrators (the paper's contribution):

* :class:`~repro.switches.revsort_switch.RevsortSwitch` — Section 4's
  3-stage switch based on Algorithm 1 (first 1½ Revsort iterations).
* :class:`~repro.switches.columnsort_switch.ColumnsortSwitch` —
  Section 5's 2-stage switch based on Algorithm 2 (first 3 Columnsort
  steps), β-parametrised.

Multichip hyperconcentrators (Section 6):

* :class:`~repro.switches.multichip_hyper.FullRevsortHyperconcentrator`
* :class:`~repro.switches.multichip_hyper.FullColumnsortHyperconcentrator`
"""

from repro.switches.arbitration import RotatingPriorityConcentrator
from repro.switches.base import ConcentratorSwitch, Routing
from repro.switches.bitonic import BitonicHyperconcentrator, TruncatedBitonicSwitch
from repro.switches.cascade import CascadeSwitch, cascade_spec
from repro.switches.columnsort_switch import ColumnsortSwitch
from repro.switches.hyperconcentrator import Hyperconcentrator
from repro.switches.iterated_columnsort import IteratedColumnsortSwitch
from repro.switches.multichip_hyper import (
    FullColumnsortHyperconcentrator,
    FullRevsortHyperconcentrator,
)
from repro.switches.perfect import PerfectConcentrator
from repro.switches.prefix_butterfly import PrefixButterflyHyperconcentrator
from repro.switches.revsort_switch import RevsortSwitch

__all__ = [
    "BitonicHyperconcentrator",
    "RotatingPriorityConcentrator",
    "CascadeSwitch",
    "cascade_spec",
    "ColumnsortSwitch",
    "ConcentratorSwitch",
    "FullColumnsortHyperconcentrator",
    "FullRevsortHyperconcentrator",
    "Hyperconcentrator",
    "IteratedColumnsortSwitch",
    "PerfectConcentrator",
    "PrefixButterflyHyperconcentrator",
    "RevsortSwitch",
    "Routing",
    "TruncatedBitonicSwitch",
]
