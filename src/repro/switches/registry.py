"""Name-based switch registry.

One place mapping design names to constructors, shared by the CLI, the
examples, and downstream tooling.  Each entry documents its parameter
requirements; :func:`build_switch` validates and instantiates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro import obs
from repro.errors import ConfigurationError
from repro.switches.base import ConcentratorSwitch


@dataclass(frozen=True)
class SwitchEntry:
    """Registry entry: a builder plus its human description.

    ``certify`` lists the parameter sets ``repro certify`` proves for
    this design — small enough to enumerate (n ≤ 16 exhaustively,
    n ≤ 64 stratified through the batch engine), large enough to
    exercise the real stage structure.
    """

    name: str
    description: str
    build: Callable[..., ConcentratorSwitch]
    certify: tuple[dict, ...] = ()


def _build_revsort(*, n: int, m: int, **_: object) -> ConcentratorSwitch:
    from repro.switches.revsort_switch import RevsortSwitch

    return RevsortSwitch(n, m)


def _build_columnsort(
    *, n: int = 0, m: int, r: int = 0, s: int = 0, beta: float = 0.75, **_: object
) -> ConcentratorSwitch:
    from repro.switches.columnsort_switch import ColumnsortSwitch

    if r and s:
        return ColumnsortSwitch(r, s, m)
    if not n:
        raise ConfigurationError("columnsort needs either (r, s) or (n, beta)")
    return ColumnsortSwitch.from_beta(n, beta, m)


def _build_hyper(*, n: int, **_: object) -> ConcentratorSwitch:
    from repro.switches.hyperconcentrator import Hyperconcentrator

    return Hyperconcentrator(n)


def _build_perfect(*, n: int, m: int, **_: object) -> ConcentratorSwitch:
    from repro.switches.perfect import PerfectConcentrator

    return PerfectConcentrator(n, m)


def _build_butterfly(*, n: int, **_: object) -> ConcentratorSwitch:
    from repro.switches.prefix_butterfly import PrefixButterflyHyperconcentrator

    return PrefixButterflyHyperconcentrator(n)


def _build_bitonic(*, n: int, **_: object) -> ConcentratorSwitch:
    from repro.switches.bitonic import BitonicHyperconcentrator

    return BitonicHyperconcentrator(n)


def _build_fullrevsort(*, n: int, **_: object) -> ConcentratorSwitch:
    from repro.switches.multichip_hyper import FullRevsortHyperconcentrator

    return FullRevsortHyperconcentrator(n)


REGISTRY: dict[str, SwitchEntry] = {
    "revsort": SwitchEntry(
        "revsort",
        "Section 4 three-stage Revsort partial concentrator",
        _build_revsort,
        certify=({"n": 16, "m": 12}, {"n": 64, "m": 48}),
    ),
    "columnsort": SwitchEntry(
        "columnsort",
        "Section 5 two-stage Columnsort partial concentrator (by (r,s) or (n,beta))",
        _build_columnsort,
        certify=({"r": 8, "s": 2, "m": 12}, {"r": 16, "s": 4, "m": 48}),
    ),
    "hyper": SwitchEntry(
        "hyper",
        "single-chip n-by-n hyperconcentrator (functional model)",
        _build_hyper,
        certify=({"n": 16},),
    ),
    "perfect": SwitchEntry(
        "perfect",
        "n-by-m perfect concentrator from a hyperconcentrator",
        _build_perfect,
        certify=({"n": 16, "m": 8},),
    ),
    "butterfly": SwitchEntry(
        "butterfly",
        "Section 1 prefix+butterfly hyperconcentrator (not combinational)",
        _build_butterfly,
        certify=({"n": 16},),
    ),
    "bitonic": SwitchEntry(
        "bitonic",
        "bitonic sorting network as a hyperconcentrator",
        _build_bitonic,
        certify=({"n": 16},),
    ),
    "fullrevsort": SwitchEntry(
        "fullrevsort",
        "Section 6 full-Revsort multichip hyperconcentrator",
        _build_fullrevsort,
        certify=({"n": 16}, {"n": 64}),
    ),
}


def available() -> list[str]:
    """Registered design names."""
    return sorted(REGISTRY)


def certify_configs(designs: list[str] | None = None) -> list[tuple[str, dict]]:
    """``(name, params)`` pairs ``repro certify`` proves — every
    registered design at its declared configs, or a named subset."""
    names = available() if designs is None else list(designs)
    configs: list[tuple[str, dict]] = []
    for name in names:
        try:
            entry = REGISTRY[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown switch {name!r}; available: {', '.join(available())}"
            ) from None
        configs.extend((name, dict(params)) for params in entry.certify)
    return configs


def build_switch(name: str, **params: object) -> ConcentratorSwitch:
    """Instantiate a registered design by name."""
    try:
        entry = REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown switch {name!r}; available: {', '.join(available())}"
        ) from None
    obs.counter("switch.built", name=name).inc()
    return entry.build(**params)
