"""The prefix + butterfly hyperconcentrator (Section 1's alternative).

"A different hyperconcentrator switch, comprised of a parallel prefix
circuit and a butterfly network, can be built in volume Θ(n^{3/2})
with O(n lg n) chips and as few as four data pins per chip, but this
switch is not combinational.  Although its sequential control is not
very complex, it is not as simple as that of a combinational circuit."

This module implements that switch faithfully at the functional level:

* a **parallel prefix circuit** computes each valid input's rank
  (``rank_i`` = number of valid bits among inputs 0..i);
* a **reverse butterfly network** of lg n stages of 2×2 switches routes
  input i to output ``rank_i − 1``.  Because the destination sequence
  of the active inputs is monotone increasing and contiguous from 0,
  this *concentration* pattern is routable with no conflicts — the
  classical reverse-banyan concentrator result, which
  :func:`butterfly_route` realises stage by stage and the tests verify
  exhaustively for small n.

The sequential control the paper alludes to is the per-setup
computation of the switch settings (one bit per 2×2 switch per setup);
:class:`PrefixButterflyHyperconcentrator` exposes those settings so the
cost of control state can be accounted (``n/2 · lg n`` bits).
"""

from __future__ import annotations

import numpy as np

from repro._util.bits import ceil_lg, ilg
from repro.core.concentration import ConcentratorSpec
from repro.engine.batch import BatchRouting, hyperconcentrate_batch
from repro.errors import ConfigurationError, RoutingError
from repro.switches.base import ConcentratorSwitch, Routing


def prefix_ranks(valid: np.ndarray) -> np.ndarray:
    """The parallel prefix circuit: inclusive popcount prefix.  Rank of
    input i (1-based among valid inputs); 0 where invalid."""
    valid = np.asarray(valid, dtype=bool)
    return np.cumsum(valid.astype(np.int64)) * valid


def butterfly_route(
    destinations: np.ndarray,
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Route packets through a reverse butterfly by destination address.

    ``destinations[i]`` is input i's target output (−1 = no packet).
    Stage t (t = 0..lg n −1) pairs positions differing in bit t and
    sets each 2×2 switch so every packet moves to a position agreeing
    with its destination in bits 0..t.  Returns the final positions
    and the per-stage switch settings (True = crossed).

    Raises :class:`RoutingError` on a conflict (two packets needing the
    same port) — which never happens for monotone concentration
    patterns; the tests assert this exhaustively.
    """
    dest = np.asarray(destinations, dtype=np.int64)
    n = dest.size
    q = ilg(n)
    # Packet i starts at position i; position_of tracks it per stage.
    position_of = np.arange(n, dtype=np.int64)
    occupant = np.full(n, -1, dtype=np.int64)  # position -> packet
    settings: list[np.ndarray] = []

    for t in range(q):
        bit = 1 << t
        stage_setting = np.zeros(n // 2, dtype=bool)
        occupant[:] = -1
        for i in range(n):
            if dest[i] >= 0:
                occupant[position_of[i]] = i
        new_position = position_of.copy()
        pair_index = 0
        for p in range(n):
            if p & bit:
                continue  # handle each pair once, from its low member
            lo, hi = p, p | bit
            # Each packet must move to the member of the pair matching
            # its destination's bit t.
            want_hi = []
            want_lo = []
            for packet in (occupant[lo], occupant[hi]):
                if packet < 0:
                    continue
                if dest[packet] & bit:
                    want_hi.append(packet)
                else:
                    want_lo.append(packet)
            if len(want_hi) > 1 or len(want_lo) > 1:
                raise RoutingError(
                    f"butterfly conflict at stage {t}, pair ({lo},{hi})"
                )
            crossed = bool(
                (want_hi and position_of[want_hi[0]] == lo)
                or (want_lo and position_of[want_lo[0]] == hi)
            )
            for packet in want_hi:
                new_position[packet] = hi
            for packet in want_lo:
                new_position[packet] = lo
            stage_setting[pair_index] = crossed
            pair_index += 1
        position_of = new_position
        settings.append(stage_setting)

    final = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        if dest[i] >= 0:
            if position_of[i] != dest[i]:
                raise RoutingError(
                    f"packet {i} ended at {position_of[i]}, wanted {dest[i]}"
                )
            final[i] = position_of[i]
    return final, settings


class PrefixButterflyHyperconcentrator(ConcentratorSwitch):
    """Section 1's non-combinational hyperconcentrator: parallel prefix
    rank computation + reverse butterfly routing.

    Functionally identical to
    :class:`repro.switches.hyperconcentrator.Hyperconcentrator`; the
    difference is the implementation technology and its cost profile
    (few pins, many small chips, sequential control).
    """

    #: Data pins per chip in the minimal packaging the paper cites.
    MIN_DATA_PINS = 4

    def __init__(self, n: int):
        if n < 1:
            raise ConfigurationError(f"size must be positive, got {n}")
        if n > 1:
            ilg(n)  # butterfly needs a power of two
        self.n = n
        self.m = n
        self._last_settings: list[np.ndarray] | None = None

    @property
    def spec(self) -> ConcentratorSpec:
        return ConcentratorSpec(n=self.n, m=self.n, alpha=1.0)

    def setup(self, valid: np.ndarray) -> Routing:
        valid = self._check_valid(valid)
        ranks = prefix_ranks(valid)
        destinations = np.where(valid, ranks - 1, -1)
        if self.n == 1:
            routing = np.where(valid, 0, -1).astype(np.int64)
            self._last_settings = []
        else:
            routing, settings = butterfly_route(destinations)
            self._last_settings = settings
        return Routing(
            n_inputs=self.n, n_outputs=self.n, valid=valid, input_to_output=routing
        )

    def _setup_batch(self, valid: np.ndarray) -> BatchRouting:
        """Vectorized setup: destinations of a concentration pattern are
        monotone, so the butterfly always realises ``rank − 1`` exactly
        (the scalar path proves it per trial and stays the oracle).
        Batch setups do not record per-trial switch settings; call
        :meth:`setup` when :meth:`switch_settings` is needed."""
        return BatchRouting(
            n_inputs=self.n,
            n_outputs=self.n,
            valid=valid,
            input_to_output=hyperconcentrate_batch(valid),
        )

    def switch_settings(self) -> list[np.ndarray]:
        """Per-stage 2×2 switch settings of the last setup — the
        sequential control state the paper mentions (``(n/2)·lg n``
        bits)."""
        if self._last_settings is None:
            raise RoutingError("no setup has been performed yet")
        return self._last_settings

    # -- cost model (the Section 1 figures for this alternative) --------

    @property
    def stages(self) -> int:
        return ceil_lg(self.n) if self.n > 1 else 0

    @property
    def switch_count(self) -> int:
        """2×2 switches in the butterfly: (n/2)·lg n."""
        return (self.n // 2) * self.stages

    @property
    def control_bits(self) -> int:
        """Sequential control state: one bit per 2×2 switch."""
        return self.switch_count

    @property
    def chip_count(self) -> int:
        """O(n lg n) chips in the minimal 4-data-pin packaging: one
        2×2 switch per chip, plus n prefix nodes."""
        return self.switch_count + self.n

    @property
    def data_pins_per_chip(self) -> int:
        """As few as four data pins per chip (one 2×2 switch: 2 in +
        2 out)."""
        return self.MIN_DATA_PINS

    @property
    def volume(self) -> int:
        """Θ(n^{3/2}): the paper's cited packaging volume."""
        import math

        return int(self.n * math.isqrt(self.n))

    @property
    def is_combinational(self) -> bool:
        """False: settings must be computed and latched each setup."""
        return False

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"PrefixButterflyHyperconcentrator(n={self.n})"
