"""√n-bit barrel shifter with hardwired control (Section 4, Figure 4).

Each stage-2 board of the 3-D Revsort packaging follows its
hyperconcentrator chip with a barrel shifter that cyclically rotates
the row by ``rev(i)`` places to the right; the ``⌈lg √n⌉`` control
bits are hardwired per board after fabrication.  Because the shift
amount never changes, the shifter contributes only a constant number of
gate delays.
"""

from __future__ import annotations

import numpy as np

from repro._util.bits import ceil_lg
from repro.errors import ConfigurationError

#: Gate delays through a hardwired barrel shifter (the paper: "only a
#: constant number of gate delays"); one pass-transistor/mux level.
BARREL_DELAY = 1


class BarrelShifter:
    """A ``width``-bit barrel shifter with a hardwired rotation amount.

    ``shift`` is the number of places each wire is rotated to the
    *right*: input wire ``j`` drives output wire ``(shift + j) mod
    width``.
    """

    def __init__(self, width: int, shift: int):
        if width < 1:
            raise ConfigurationError(f"barrel width must be positive, got {width}")
        self.width = width
        self.shift = shift % width

    @property
    def control_bits(self) -> int:
        """``⌈lg width⌉`` hardwired control pins."""
        return ceil_lg(self.width) if self.width > 1 else 0

    @property
    def data_pins(self) -> int:
        """Input + output data pins."""
        return 2 * self.width

    @property
    def pins(self) -> int:
        """Total pins: data plus hardwired control."""
        return self.data_pins + self.control_bits

    @property
    def area(self) -> int:
        """Θ(width·lg width) mux cells (width per control level)."""
        return self.width * max(self.control_bits, 1)

    @property
    def gate_delays(self) -> int:
        return BARREL_DELAY

    def permutation(self) -> np.ndarray:
        """Wire map: ``out[j] = (shift + j) mod width`` (the Section 4
        rotation convention for row entries)."""
        return (self.shift + np.arange(self.width, dtype=np.int64)) % self.width

    def apply(self, bits: np.ndarray) -> np.ndarray:
        """Rotate a wire vector right by ``shift`` places."""
        arr = np.asarray(bits)
        if arr.shape != (self.width,):
            raise ConfigurationError(
                f"expected {self.width} wires, got shape {arr.shape}"
            )
        return np.roll(arr, self.shift)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"BarrelShifter(width={self.width}, shift={self.shift})"
