"""Cycle-accurate sequential control for the prefix + butterfly switch.

The paper contrasts its combinational designs with the prefix +
butterfly hyperconcentrator, whose "sequential control is not very
complex, but it is not as simple as that of a combinational circuit."
This module makes that cost concrete: a clocked controller that

1. latches the valid bits (1 cycle),
2. runs the parallel-prefix rank computation as a systolic sweep —
   one combine level per cycle, ``⌈lg n⌉`` cycles,
3. computes and latches the 2×2 switch settings stage by stage
   (``⌈lg n⌉`` cycles, one butterfly stage per cycle),

after which payload bits stream through the latched datapath.  Total
setup latency: ``2⌈lg n⌉ + 2`` cycles, versus the combinational
switches' *zero* extra cycles (their paths settle within the setup
cycle itself).  :func:`setup_latency_comparison` tabulates the contrast
the paper draws.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util.bits import ceil_lg, ilg
from repro.errors import ConfigurationError, SimulationError
from repro.switches.prefix_butterfly import butterfly_route, prefix_ranks


@dataclass(frozen=True)
class ControlTrace:
    """Cycle-by-cycle record of one setup."""

    cycles: int
    rank_snapshots: list[np.ndarray]      # per prefix cycle
    settings: list[np.ndarray]            # latched per stage cycle
    destinations: np.ndarray


class SequentialController:
    """The clocked setup engine of an n-input prefix+butterfly switch."""

    def __init__(self, n: int):
        if n < 2:
            raise ConfigurationError(f"controller needs n >= 2, got {n}")
        ilg(n)
        self.n = n
        self.q = ceil_lg(n)

    @property
    def setup_cycles(self) -> int:
        """1 (latch) + q (prefix sweep) + q (stage settings) + 1
        (go)."""
        return 2 * self.q + 2

    def run_setup(self, valid: np.ndarray) -> ControlTrace:
        """Execute the setup schedule, recording each cycle's state.

        The prefix sweep is the standard doubling recurrence: after
        cycle t, ``counts[i]`` holds the popcount of the window
        ``(i − 2^t, i]`` — after q cycles, the full inclusive prefix.
        """
        valid = np.asarray(valid, dtype=bool)
        if valid.shape != (self.n,):
            raise SimulationError(f"expected {self.n} valid bits")

        # Cycle 0: latch.
        counts = valid.astype(np.int64).copy()
        snapshots: list[np.ndarray] = []

        # Cycles 1..q: prefix doubling sweep.
        for t in range(self.q):
            shift = 1 << t
            shifted = np.zeros_like(counts)
            shifted[shift:] = counts[:-shift]
            counts = counts + shifted
            snapshots.append(counts.copy())

        ranks = counts * valid  # rank per valid input, 0 otherwise
        if not np.array_equal(ranks, prefix_ranks(valid)):
            raise SimulationError("prefix sweep diverged from the reference")
        destinations = np.where(valid, ranks - 1, -1)

        # Cycles q+1..2q: settings, one butterfly stage per cycle.
        _, settings = butterfly_route(destinations)

        return ControlTrace(
            cycles=self.setup_cycles,
            rank_snapshots=snapshots,
            settings=settings,
            destinations=destinations,
        )


def setup_latency_comparison(ns: list[int]) -> list[dict[str, object]]:
    """The paper's contrast: setup cycles before streaming can begin,
    combinational chip vs sequential prefix+butterfly."""
    rows = []
    for n in ns:
        controller = SequentialController(n)
        rows.append(
            {
                "n": n,
                "combinational chip setup cycles": 1,  # settles in-cycle
                "prefix+butterfly setup cycles": controller.setup_cycles,
                "latched control bits": (n // 2) * controller.q,
            }
        )
    return rows
