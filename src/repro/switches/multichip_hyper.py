"""Multichip hyperconcentrators from the *full* sorting algorithms
(Section 6 of the paper).

"Rather than simulating just the first steps of Revsort and Columnsort,
one could simulate the full algorithms to fully sort the valid bits and
thus build multichip hyperconcentrator switches."

* :class:`FullRevsortHyperconcentrator` — ``⌈lg lg √n⌉`` repetitions of
  stacks 1 and 2 (Algorithm 1, steps 1–3), the completing column sort,
  then three Shearsort iteration stacks (snake row sort + column sort;
  the snake orientation is fixed permutation wiring around ordinary
  hyperconcentrator chips), plus the standard final row stack that
  converts the last snake-sorted dirty row into row-major order.
  A signal passes through ``2⌈lg lg √n⌉ + O(1)`` chip pairs for
  ``4 lg n lg lg n + 8 lg n + O(lg lg n)`` gate delays, using
  ``Θ(√n lg lg n)`` chips in volume ``Θ(n^{3/2} lg lg n)``.

* :class:`FullColumnsortHyperconcentrator` — all eight Columnsort steps
  (requires ``r ≥ 2(s−1)²``).  Steps 6–8 are realised with sentinel
  wires: the vacated top half-column is hardwired valid and the
  trailing half column hardwired invalid, exactly like padding the
  matrix with ±∞ entries.  A signal passes through four chips for
  ``8β lg n + O(1)`` gate delays; chip count and volume match the
  Section 5 partial concentrator.  The fully sorted output is read in
  column-major order (Leighton's convention).
"""

from __future__ import annotations

import math

import numpy as np

from repro._util.bits import ilg
from repro.core.concentration import ConcentratorSpec
from repro.engine import (
    BatchRouting,
    StagePlan,
    chip_layer,
    fixed_permutation,
    plan_cache,
    concentrate_plan_batch,
    run_plan,
)
from repro.errors import ConfigurationError, RoutingError
from repro.mesh.columnsort import validate_columnsort_shape
from repro.mesh.order import rev_rotate_permutation
from repro.mesh.revsort import revsort_repetitions
from repro.switches.base import ConcentratorSwitch, Routing
from repro.switches.hyperconcentrator import Hyperconcentrator
from repro.switches.wiring import (
    apply_chip_layer,
    column_groups,
    compose,
    row_groups,
)


def _permute_bits(bits: np.ndarray, perm: np.ndarray) -> np.ndarray:
    out = np.empty_like(bits)
    out[perm] = bits
    return out


def _build_full_revsort_plan(n: int, side: int, repetitions: int) -> StagePlan:
    """Compile the whole Section 6 pipeline: Revsort repetitions, the
    completing column sort, three Shearsort iterations, and the final
    row-major fixup stack."""
    cols = chip_layer(column_groups(side, side))
    rows = chip_layer(row_groups(side, side))
    rows_snake = chip_layer(row_groups(side, side, reverse_odd=True))
    rotate = fixed_permutation(rev_rotate_permutation(side))
    ops: list = []
    for _ in range(repetitions):
        ops += [cols, rows, rotate]
    ops.append(cols)
    for _ in range(3):
        ops += [rows_snake, cols]
    ops.append(rows)
    return StagePlan(key=("fullrevsort", n), n=n, ops=tuple(ops))


class FullRevsortHyperconcentrator(ConcentratorSwitch):
    """n-by-n multichip hyperconcentrator from the full Revsort
    (Section 6)."""

    def __init__(self, n: int):
        side = math.isqrt(n)
        if side * side != n:
            raise ConfigurationError(f"requires square n, got {n}")
        ilg(side)
        self.n = n
        self.m = n
        self.side = side
        self.repetitions = revsort_repetitions(side)
        self._chip = Hyperconcentrator(side)

    @property
    def _plan(self) -> StagePlan:
        return plan_cache().get_or_build(
            ("fullrevsort", self.n),
            lambda: _build_full_revsort_plan(self.n, self.side, self.repetitions),
        )

    @property
    def _cols(self) -> list:
        return list(self._plan.ops[0].groups)

    @property
    def _rows(self) -> list:
        return list(self._plan.ops[1].groups)

    @property
    def _rows_snake(self) -> list:
        # First Shearsort stage: after `repetitions` (cols, rows,
        # rotate) triples and the completing column sort.
        return list(self._plan.ops[3 * self.repetitions + 1].groups)

    @property
    def _rotate(self) -> np.ndarray:
        return self._plan.ops[2].perm

    @property
    def spec(self) -> ConcentratorSpec:
        return ConcentratorSpec(n=self.n, m=self.n, alpha=1.0)

    def final_positions(self, valid: np.ndarray) -> np.ndarray:
        """Row-major position of each input after the full pipeline."""
        valid = self._check_valid(valid)
        perms: list[np.ndarray] = []
        current = valid.copy()

        def chip_layer(groups: list[np.ndarray]) -> None:
            nonlocal current
            p = apply_chip_layer(current, groups)
            current = _permute_bits(current, p)
            perms.append(p)

        for _ in range(self.repetitions):
            chip_layer(self._cols)          # sort columns
            chip_layer(self._rows)          # sort rows
            perms.append(self._rotate)      # rev(i) rotation wiring
            current = _permute_bits(current, self._rotate)
        chip_layer(self._cols)              # completing column sort

        for _ in range(3):                  # three Shearsort iterations
            chip_layer(self._rows_snake)
            chip_layer(self._cols)
        chip_layer(self._rows)              # final row-major fixup

        return compose(perms)

    def final_positions_batch(self, valid: np.ndarray) -> np.ndarray:
        """Batched :meth:`final_positions` over ``(B, n)`` trials;
        entries for invalid inputs are unspecified."""
        return run_plan(self._plan, self._check_valid_batch(valid))

    def setup(self, valid: np.ndarray) -> Routing:
        valid = self._check_valid(valid)
        final = self.final_positions(valid)
        routing = np.where(valid, final, -1)
        return Routing(
            n_inputs=self.n, n_outputs=self.n, valid=valid, input_to_output=routing
        )

    def _setup_batch(self, valid: np.ndarray) -> BatchRouting:
        routing = concentrate_plan_batch(self._plan, valid, self.n)
        return BatchRouting(
            n_inputs=self.n, n_outputs=self.n, valid=valid, input_to_output=routing
        )

    # -- resource model --------------------------------------------------

    @property
    def chips_on_signal_path(self) -> int:
        """Hyperconcentrator chips a signal traverses:
        2 per repetition + completing sort + 2×3 Shearsort + final row
        stack (the paper's ``2 lg lg n + O(1)``)."""
        return 2 * self.repetitions + 1 + 6 + 1

    @property
    def chip_count(self) -> int:
        """Total chips: √n per stack, one stack per chip layer —
        ``Θ(√n lg lg n)``."""
        return self.chips_on_signal_path * self.side

    @property
    def gate_delays(self) -> int:
        """``4 lg n lg lg n + 8 lg n + O(lg lg n)`` asymptotically; here
        computed exactly from the construction."""
        return self.chips_on_signal_path * self._chip.gate_delays

    @property
    def volume(self) -> int:
        """``Θ(n^{3/2} lg lg n)``: one Θ(n) board per chip."""
        return self.chip_count * self.side * self.side

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"FullRevsortHyperconcentrator(n={self.n})"


class FullColumnsortHyperconcentrator(ConcentratorSwitch):
    """n-by-n multichip hyperconcentrator from all eight Columnsort
    steps (Section 6); requires ``r ≥ 2(s−1)²``."""

    def __init__(self, r: int, s: int):
        validate_columnsort_shape(r, s, full=True)
        self.r = r
        self.s = s
        self.n = r * s
        self.m = self.n
        self.half = r // 2
        self._groups = column_groups(r, s)
        self._groups_ext = column_groups(r, s + 1)
        self._chip = Hyperconcentrator(r)

    @property
    def spec(self) -> ConcentratorSpec:
        return ConcentratorSpec(n=self.n, m=self.n, alpha=1.0)

    def final_positions(self, valid: np.ndarray) -> np.ndarray:
        """Column-major output index of each input after all 8 steps."""
        valid = self._check_valid(valid)
        r, s, n, half = self.r, self.s, self.n, self.half

        # pos[i] = current flat row-major position of input i.
        pos = np.arange(n, dtype=np.int64)

        def chip_layer(groups: list[np.ndarray], size: int) -> None:
            nonlocal pos
            bits = np.zeros(size, dtype=bool)
            bits[pos] = valid
            perm = apply_chip_layer(bits, groups)
            pos = perm[pos]

        def wire(perm: np.ndarray) -> None:
            nonlocal pos
            pos = perm[pos]

        from repro.mesh.order import cm_to_rm_permutation, rm_to_cm_permutation

        chip_layer(self._groups, n)                    # step 1
        wire(cm_to_rm_permutation(r, s))               # step 2
        chip_layer(self._groups, n)                    # step 3
        wire(rm_to_cm_permutation(r, s))               # step 4
        chip_layer(self._groups, n)                    # step 5

        # step 6: shift down half a column into the r x (s+1) space.
        i, j = pos // s, pos % s
        cm_ext = (r * j + i) + half
        pos_ext = (s + 1) * (cm_ext % r) + cm_ext // r

        # step 7: sort columns of the extended matrix, with sentinel
        # wires: top half-column of column 0 hardwired valid, trailing
        # half column of column s hardwired invalid.
        bits_ext = np.zeros(n + r, dtype=bool)
        bits_ext[pos_ext] = valid
        for t in range(half):                          # valid sentinels
            bits_ext[(s + 1) * t] = True
        perm_ext = apply_chip_layer(bits_ext, self._groups_ext)
        pos_ext = perm_ext[pos_ext]

        # step 8: unshift — strip sentinels; the output index is the
        # real column-major position x = x' − half.
        i2, j2 = pos_ext // (s + 1), pos_ext % (s + 1)
        x = (r * j2 + i2) - half
        if x.size and ((x < 0) | (x >= n)).any():
            raise RoutingError(
                "a message landed in a sentinel slot during Columnsort step 8"
            )
        return x

    def setup(self, valid: np.ndarray) -> Routing:
        valid = self._check_valid(valid)
        final = self.final_positions(valid)
        routing = np.where(valid, final, -1)
        return Routing(
            n_inputs=self.n, n_outputs=self.n, valid=valid, input_to_output=routing
        )

    # -- resource model --------------------------------------------------

    @property
    def chips_on_signal_path(self) -> int:
        """Four chips per signal (steps 1, 3, 5, 7)."""
        return 4

    @property
    def chip_count(self) -> int:
        """``3s + (s+1)`` chips: stages for steps 1/3/5 have s chips,
        the extended step-7 stage has s+1 — still ``Θ(n^{1−β})``."""
        return 3 * self.s + (self.s + 1)

    @property
    def gate_delays(self) -> int:
        """``8β lg n + O(1)``: four chips at ``2⌈lg r⌉ + O(1)`` each."""
        return self.chips_on_signal_path * self._chip.gate_delays

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"FullColumnsortHyperconcentrator(r={self.r}, s={self.s})"
