"""Stage machinery for multichip switches.

A multichip switch is a pipeline alternating two kinds of layers:

* **chip layers** — a bank of hyperconcentrator chips, each sorting the
  valid bits of one *group* of wire positions (a matrix row or column);
* **wiring layers** — fixed pin-to-pin permutations between stages
  (transpose, ``rev(i)`` rotation, ``RM⁻¹∘CM`` reshuffle).

Both are represented uniformly as permutations of the flat wire-position
space, so the whole switch composes into a single permutation per setup
(plus the fixed output restriction).  This module builds the group
index sets and applies the chip-layer concentration.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.switches.hyperconcentrator import concentrate_permutation


def column_groups(rows: int, cols: int, *, reverse_odd: bool = False) -> list[np.ndarray]:
    """Wire-position groups for a chip layer that sorts each *column*
    of an ``rows × cols`` matrix: group ``j`` lists flat positions
    ``cols·i + j`` for ``i = 0..rows−1`` (chip wire 0 = top of column).
    """
    _check_shape(rows, cols)
    groups = [np.arange(rows, dtype=np.int64) * cols + j for j in range(cols)]
    if reverse_odd:
        groups = [g[::-1] if j % 2 else g for j, g in enumerate(groups)]
    return groups


def row_groups(rows: int, cols: int, *, reverse_odd: bool = False) -> list[np.ndarray]:
    """Groups for a chip layer that sorts each *row*: group ``i`` lists
    flat positions ``cols·i + j`` for ``j = 0..cols−1`` (chip wire 0 =
    left end of the row).

    ``reverse_odd=True`` yields the snake orientation used by the
    Shearsort stacks of Section 6: odd rows are wired to their chips in
    reversed order, so the chip's leading outputs land at the row's
    *right* end.
    """
    _check_shape(rows, cols)
    groups = [np.arange(cols, dtype=np.int64) + cols * i for i in range(rows)]
    if reverse_odd:
        groups = [g[::-1] if i % 2 else g for i, g in enumerate(groups)]
    return groups


def apply_chip_layer(
    valid_by_pos: np.ndarray, groups: list[np.ndarray]
) -> np.ndarray:
    """One bank of hyperconcentrator chips as a position permutation.

    ``valid_by_pos[p]`` is the valid bit currently on wire position
    ``p``.  Each group is fed to one chip; the chip moves its valid
    inputs to its leading wires (order-preserving).  Returns ``perm``
    with ``new_position = perm[old_position]``.  Positions not covered
    by any group stay put; groups must be disjoint.

    When the groups form a rectangular bank (equal sizes), the whole
    layer is computed with one batched stable argsort — the hot path of
    every multichip setup (see :func:`apply_chip_layer_batched`).
    """
    n = valid_by_pos.size
    sizes = {g.size for g in groups}
    if len(sizes) == 1 and groups and sum(g.size for g in groups) <= n:
        stacked = np.stack(groups)  # (chips, width)
        seen = np.zeros(n, dtype=bool)
        flat = stacked.reshape(-1)
        seen[flat] = True
        if seen.sum() != flat.size:
            raise ConfigurationError("chip groups overlap: a wire feeds two chips")
        perm = np.arange(n, dtype=np.int64)
        local = apply_chip_layer_batched(valid_by_pos[stacked])
        perm[flat] = np.take_along_axis(stacked, local, axis=1).reshape(-1)
        return perm

    perm = np.arange(n, dtype=np.int64)
    seen = np.zeros(n, dtype=bool)
    for group in groups:
        if seen[group].any():
            raise ConfigurationError("chip groups overlap: a wire feeds two chips")
        seen[group] = True
        local = concentrate_permutation(valid_by_pos[group])
        perm[group] = group[local]
    return perm


def apply_chip_layer_batched(valid_rows: np.ndarray) -> np.ndarray:
    """Vectorised order-preserving concentration for a bank of
    equal-width chips: ``valid_rows`` is (chips, width); returns
    ``local`` with ``local[c, w]`` = the chip-local output wire of chip
    c's input wire w (valid inputs to the leading wires, stable)."""
    order = np.argsort(~valid_rows, axis=1, kind="stable")  # winners first
    local = np.empty_like(order)
    np.put_along_axis(
        local, order, np.broadcast_to(np.arange(valid_rows.shape[1]), order.shape).copy(), axis=1
    )
    return local


def compose(perms: list[np.ndarray]) -> np.ndarray:
    """Compose position permutations applied left to right:
    ``result[p] = perms[-1][...perms[0][p]...]``."""
    if not perms:
        raise ConfigurationError("cannot compose an empty permutation list")
    out = perms[0].copy()
    for perm in perms[1:]:
        out = perm[out]
    return out


def _check_shape(rows: int, cols: int) -> None:
    if rows < 1 or cols < 1:
        raise ConfigurationError(f"matrix shape must be positive, got {rows}x{cols}")
