"""The single-chip n-by-n hyperconcentrator (functional model).

The building block of every multichip switch in the paper: a
combinational circuit that, for any 1 ≤ k ≤ n, establishes disjoint
electrical paths from its k valid inputs to its *first* k outputs
(Cormen & Leiserson, ICPP 1986).  A signal incurs 2⌈lg n⌉ + O(1) gate
delays and the regular layout uses Θ(n²) components.

This module is the fast functional model used inside the multichip
switch simulations: routing is **order-preserving by rank** — the t-th
valid input (in wire order) is routed to output t, which is how the
rank-crossbar netlist in :mod:`repro.gates.hyperconc_gates` behaves.
The two implementations are cross-checked exhaustively in the tests.
"""

from __future__ import annotations

import numpy as np

from repro._util.bits import ceil_lg
from repro.core.concentration import ConcentratorSpec
from repro.engine.batch import BatchRouting, hyperconcentrate_batch
from repro.errors import ConfigurationError
from repro.switches.base import ConcentratorSwitch, Routing

#: Extra gate delays contributed by I/O pad circuitry per chip
#: (the paper's "+O(1)"; one concrete constant for the delay model).
PAD_DELAY = 2


def concentrate_permutation(valid: np.ndarray) -> np.ndarray:
    """The full wire permutation of one hyperconcentrator chip.

    Valid inputs go to the leading outputs and invalid inputs to the
    trailing outputs, each group in wire order.  (Physically the chip
    only promises paths for the valid inputs; extending to a full
    permutation simply names the idle outputs, which makes multichip
    stage composition a chain of permutations.)
    """
    valid = np.asarray(valid, dtype=bool)
    n = valid.size
    perm = np.empty(n, dtype=np.int64)
    k = int(valid.sum())
    perm[valid] = np.arange(k)
    perm[~valid] = np.arange(k, n)
    return perm


def hyperconcentrate_routing(valid: np.ndarray) -> np.ndarray:
    """Paths for valid inputs only: the t-th valid input (wire order)
    gets output t; invalid inputs get −1."""
    valid = np.asarray(valid, dtype=bool)
    routing = np.full(valid.size, -1, dtype=np.int64)
    k = int(valid.sum())
    routing[valid] = np.arange(k)
    return routing


class Hyperconcentrator(ConcentratorSwitch):
    """An n-by-n hyperconcentrator switch on a single chip.

    Parameters
    ----------
    n:
        Number of input (and output) wires.  Any positive size is
        accepted by the functional model; the multichip constructions
        instantiate powers of two.
    """

    def __init__(self, n: int):
        if n < 1:
            raise ConfigurationError(f"hyperconcentrator size must be positive, got {n}")
        self.n = n
        self.m = n

    @property
    def spec(self) -> ConcentratorSpec:
        return ConcentratorSpec(n=self.n, m=self.n, alpha=1.0)

    def setup(self, valid: np.ndarray) -> Routing:
        valid = self._check_valid(valid)
        return Routing(
            n_inputs=self.n,
            n_outputs=self.n,
            valid=valid,
            input_to_output=hyperconcentrate_routing(valid),
        )

    def _setup_batch(self, valid: np.ndarray) -> BatchRouting:
        return BatchRouting(
            n_inputs=self.n,
            n_outputs=self.n,
            valid=valid,
            input_to_output=hyperconcentrate_batch(valid),
        )

    # -- delay/cost model (paper's Section 1 figures for this chip) ----

    @property
    def gate_delays(self) -> int:
        """Gate delays a signal incurs through the chip, including pad
        circuitry: ``2⌈lg n⌉ + O(1)``."""
        return 2 * ceil_lg(self.n) + PAD_DELAY if self.n > 1 else PAD_DELAY

    @property
    def data_pins(self) -> int:
        """Data pins on the chip package: n inputs + n outputs."""
        return 2 * self.n

    @property
    def component_count(self) -> int:
        """Θ(n²) components of the regular layout."""
        return self.n * self.n

    @property
    def area(self) -> int:
        """Θ(n²) layout area (unit: one crosspoint cell)."""
        return self.n * self.n

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Hyperconcentrator(n={self.n})"
