"""The Revsort-based multichip partial concentrator switch (Section 4).

An ``(n, m, 1 − O(n^{3/4}/m))`` partial concentrator built from three
stages of ``√n`` hyperconcentrator chips each (``√n = 2^q``):

* **stage 1** — one ``√n``-by-``√n`` chip per matrix *column*; sorts
  the valid bits of each column (Algorithm 1, step 1);
* **transpose wiring** — output ``Y_{1,j,i}`` → input ``X_{2,i,j}``
  (chips switch from columns to rows; matrix entries do not move);
* **stage 2** — one chip per matrix *row* (step 2);
* **rotate+transpose wiring** — ``Y_{2,i,j}`` →
  ``X_{3,(rev(i)+j) mod √n, i}`` (step 3's ``rev(i)`` cyclic rotation
  composed with the transpose back to columns);
* **stage 3** — one chip per column (step 4).

The m output wires are the first m final matrix positions in row-major
order.  By Theorem 3 the valid bits end up with at most
``2⌈n^{1/4}⌉ − 1`` dirty rows, so the row-major reading is
``O(n^{3/4})``-nearsorted and Lemma 2 gives the load ratio.

Resource figures (reproduced by :mod:`repro.hardware`): 3√n chips with
``2√n`` data pins each (stage-2 boards add a barrel shifter with
``2√n + ⌈(lg n)/2⌉`` pins), 2-D area Θ(n²), 3-D volume Θ(n^{3/2}),
message delay ``3 lg n + O(1)`` gates.
"""

from __future__ import annotations

import math

import numpy as np

from repro._util.bits import bit_reverse, ceil_lg, ilg
from repro.core.concentration import ConcentratorSpec, lemma2_load_ratio
from repro.engine import (
    BatchRouting,
    StagePlan,
    chip_layer,
    fixed_permutation,
    plan_cache,
    concentrate_plan_batch,
    run_plan,
)
from repro.errors import ConfigurationError
from repro.mesh.order import rev_rotate_permutation
from repro.mesh.revsort import revsort_dirty_row_bound, revsort_epsilon_bound
from repro.switches.barrel import BarrelShifter
from repro.switches.base import ConcentratorSwitch, Routing, StageReport
from repro.switches.hyperconcentrator import Hyperconcentrator
from repro.switches.wiring import apply_chip_layer, column_groups, compose, row_groups


def _build_revsort_plan(n: int, side: int) -> StagePlan:
    """Compile the three chip stages and two wirings of Algorithm 1
    (the stage-1→2 transpose moves chips, not entries, so it is the
    identity on flat positions and needs no op)."""
    cols = chip_layer(column_groups(side, side))
    rows = chip_layer(row_groups(side, side))
    rotate = fixed_permutation(rev_rotate_permutation(side))
    return StagePlan(key=("revsort", n), n=n, ops=(cols, rows, rotate, cols))


class RevsortSwitch(ConcentratorSwitch):
    """Section 4's three-stage Revsort-based partial concentrator.

    Parameters
    ----------
    n:
        Number of input wires; must be an even power of two so that
        ``√n = 2^q`` (the Revsort rotation needs q-bit reversals).
    m:
        Number of output wires, ``1 ≤ m ≤ n``.
    """

    STAGES = 3

    def __init__(self, n: int, m: int):
        side = math.isqrt(n)
        if side * side != n:
            raise ConfigurationError(f"RevsortSwitch requires square n, got {n}")
        ilg(side)  # √n must be a power of two
        if not 1 <= m <= n:
            raise ConfigurationError(f"need 1 <= m <= n, got n={n}, m={m}")
        self.n = n
        self.m = m
        self.side = side
        self._chip = Hyperconcentrator(side)
        # Instance-level override of the rotate wiring (used by the
        # fault-injection suite to ablate the rev(i) rotation).  When
        # set, the shared compiled plan no longer describes this
        # instance and setup_batch falls back to the scalar loop.
        self._rotate_perm_cache = None

    @property
    def _plan(self) -> StagePlan:
        """The compiled stage plan, shared by every instance of this
        (n) shape via the process-wide plan cache.  Built lazily:
        resource-model queries on very large switches must not allocate
        the O(n) wire arrays."""
        return plan_cache().get_or_build(
            ("revsort", self.n), lambda: _build_revsort_plan(self.n, self.side)
        )

    @property
    def _col_groups(self) -> list:
        return list(self._plan.ops[0].groups)

    @property
    def _row_groups(self) -> list:
        return list(self._plan.ops[1].groups)

    @property
    def _rotate_perm(self):
        if self._rotate_perm_cache is not None:
            return self._rotate_perm_cache
        return self._plan.ops[2].perm

    # -- behaviour ------------------------------------------------------

    @property
    def epsilon_bound(self) -> int:
        """Theorem 3's nearsorting bound: the dirty window spans at most
        ``(2⌈n^{1/4}⌉ − 1)·√n`` row-major positions."""
        return revsort_epsilon_bound(self.n)

    @property
    def dirty_row_bound(self) -> int:
        """Theorem 3's bound on dirty rows after Algorithm 1."""
        return revsort_dirty_row_bound(self.n)

    @property
    def spec(self) -> ConcentratorSpec:
        """The guaranteed (n, m, 1 − ε/m) spec via Lemma 2 (α clamped to
        0 when the small-n bound is vacuous)."""
        return ConcentratorSpec(
            n=self.n, m=self.m, alpha=lemma2_load_ratio(self.m, self.epsilon_bound)
        )

    def stage_permutations(self, valid: np.ndarray) -> list[np.ndarray]:
        """The per-layer position permutations for one setup: stage-1
        chips, stage-2 chips, the rotate wiring, stage-3 chips.  (The
        stage-1→2 transpose moves chips, not matrix entries, so it is
        the identity on flat positions.)"""
        valid = self._check_valid(valid)
        perms: list[np.ndarray] = []
        current = valid.copy()

        p1 = apply_chip_layer(current, self._col_groups)
        current = _permute_bits(current, p1)
        perms.append(p1)

        p2 = apply_chip_layer(current, self._row_groups)
        current = _permute_bits(current, p2)
        perms.append(p2)

        perms.append(self._rotate_perm)
        current = _permute_bits(current, self._rotate_perm)

        p3 = apply_chip_layer(current, self._col_groups)
        perms.append(p3)
        return perms

    def final_positions(self, valid: np.ndarray) -> np.ndarray:
        """Flat row-major matrix position of each input after all three
        stages (before the output restriction)."""
        return compose(self.stage_permutations(valid))

    def final_positions_batch(self, valid: np.ndarray) -> np.ndarray:
        """Batched :meth:`final_positions` over ``(B, n)`` trials;
        entries for invalid inputs are unspecified (see
        :func:`repro.engine.run_plan`)."""
        valid2d = self._check_valid_batch(valid)
        if self._rotate_perm_cache is not None:  # plan no longer applies
            if not valid2d.shape[0]:
                return np.empty(valid2d.shape, dtype=np.int64)
            return np.stack([self.final_positions(row) for row in valid2d])
        return run_plan(self._plan, valid2d)

    def setup(self, valid: np.ndarray) -> Routing:
        valid = self._check_valid(valid)
        final = self.final_positions(valid)
        routing = np.where(valid & (final < self.m), final, -1)
        return Routing(
            n_inputs=self.n, n_outputs=self.m, valid=valid, input_to_output=routing
        )

    def _setup_batch(self, valid: np.ndarray) -> BatchRouting:
        if self._rotate_perm_cache is not None:
            return super()._setup_batch(valid)  # plan no longer applies
        routing = concentrate_plan_batch(self._plan, valid, self.m)
        return BatchRouting(
            n_inputs=self.n, n_outputs=self.m, valid=valid, input_to_output=routing
        )

    # -- resource model (Section 4 figures) -----------------------------

    @property
    def chip_count(self) -> int:
        """``3√n`` hyperconcentrator chips (plus √n barrel shifters in
        the 3-D packaging, reported separately)."""
        return self.STAGES * self.side

    @property
    def barrel_shifters(self) -> list[BarrelShifter]:
        """The √n hardwired barrel shifters of the stage-2 boards; board
        ``i`` is hardwired to rotate by ``rev(i)``."""
        q = ilg(self.side)
        return [
            BarrelShifter(self.side, bit_reverse(i, q)) for i in range(self.side)
        ]

    @property
    def data_pins_per_chip(self) -> int:
        """``2√n`` data pins on each hyperconcentrator chip."""
        return 2 * self.side

    @property
    def max_pins_per_chip(self) -> int:
        """``2√n + ⌈(lg n)/2⌉``: the barrel shifters' pin count
        dominates (data pins plus hardwired control bits)."""
        return 2 * self.side + ceil_lg(self.side)

    @property
    def gate_delays(self) -> int:
        """Message delay through the switch: three chips at
        ``2⌈lg √n⌉ + O(1)`` each, plus the constant-delay barrel
        shifter — ``3 lg n + O(1)`` total."""
        shifter = self.barrel_shifters[0].gate_delays
        return self.STAGES * self._chip.gate_delays + shifter

    def stage_reports(self) -> list[StageReport]:
        """Inventory of the three stages for the hardware model."""
        return [
            StageReport("stage1-columns", self.side, self.side, wiring="transpose"),
            StageReport(
                "stage2-rows",
                self.side,
                self.side,
                wiring="rev-rotate+transpose",
                extras={"barrel_shifters": self.side},
            ),
            StageReport("stage3-columns", self.side, self.side, wiring="output"),
        ]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"RevsortSwitch(n={self.n}, m={self.m})"


def _permute_bits(bits: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Move bit at position p to position perm[p]."""
    out = np.empty_like(bits)
    out[perm] = bits
    return out
