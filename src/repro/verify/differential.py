"""Differential oracles: three independent executions of one setup.

PR 2 left the library with three ways to route the same valid-bit
pattern — the scalar ``setup`` path, the vectorized ``setup_batch``
engine, and (for the switches with an elaborated netlist) the
gate-level simulation.  They were built independently from the paper's
text, so agreement between them is strong evidence of correctness and
any divergence is a bug by definition.  This module runs a ``(B, n)``
pattern batch through every available path and reports divergences.

The netlists are resolved by :func:`netlist_for` — deliberately via
``isinstance``, so a subclass that *mutates* routing behaviour is still
compared against the honest silicon of its base design and the mutation
is caught (see ``tests/test_verify_certify.py``).
"""

from __future__ import annotations

import numpy as np

from repro.gates.evaluate import evaluate_packed
from repro.gates.netlist import Circuit

#: Largest n for which the gate-level oracle is elaborated (the flat
#: netlist grows like the chip crossbars, so this stays small).
MAX_GATE_N = 16

# (kind, shape) -> (Circuit, out_wires); netlists depend only on the
# design shape, never on per-setup state, so process-wide reuse is safe.
_NETLIST_CACHE: dict[tuple, tuple[Circuit, list[int]]] = {}


def netlist_for(switch) -> tuple[Circuit, list[int]] | None:
    """The gate-level netlist of ``switch``'s design, if one exists.

    Returns ``(circuit, out_wires)`` where ``out_wires[p]`` carries the
    final valid bit of flat position ``p``, or None for designs without
    an elaborated netlist (or above :data:`MAX_GATE_N`).
    """
    from repro.gates.hyperconc_gates import build_hyperconcentrator
    from repro.gates.multichip_gates import (
        build_columnsort_switch_gates,
        build_revsort_switch_gates,
    )
    from repro.switches.columnsort_switch import ColumnsortSwitch
    from repro.switches.hyperconcentrator import Hyperconcentrator
    from repro.switches.revsort_switch import RevsortSwitch

    if switch.n > MAX_GATE_N:
        return None
    key: tuple | None = None
    if isinstance(switch, RevsortSwitch):
        key = ("revsort", switch.n)
        build = lambda: build_revsort_switch_gates(switch.n)  # noqa: E731
    elif isinstance(switch, ColumnsortSwitch):
        key = ("columnsort", switch.r, switch.s)
        build = lambda: build_columnsort_switch_gates(switch.r, switch.s)  # noqa: E731
    elif isinstance(switch, Hyperconcentrator):
        key = ("hyper", switch.n)

        def build() -> tuple[Circuit, list[int]]:
            circuit = build_hyperconcentrator(switch.n, with_datapath=False)
            return circuit, [circuit.wire(f"yv{j}") for j in range(switch.n)]

    if key is None:
        return None
    cached = _NETLIST_CACHE.get(key)
    if cached is None:
        cached = _NETLIST_CACHE[key] = build()
    return cached


def output_occupancy(
    switch, valid: np.ndarray, *, routing: np.ndarray | None = None
) -> np.ndarray | None:
    """Final-position occupancy bits per trial, shape ``(B, n)``.

    ``out[b, p]`` is True iff some valid input of trial ``b`` ends on
    flat position ``p`` — the quantity both the ε measurements and the
    gate-level setup plane observe.  Uses the batched
    ``final_positions_batch`` when the switch provides one, falling
    back to the scalar ``final_positions`` row by row.  For full-width
    switches without position tracking (hyperconcentrators: every valid
    input is routed), a precomputed batched ``routing`` serves instead;
    otherwise returns None.
    """
    valid = np.asarray(valid, dtype=bool)
    batched = getattr(switch, "final_positions_batch", None)
    if batched is not None:
        pos = np.asarray(batched(valid))
    elif hasattr(switch, "final_positions"):
        if valid.shape[0]:
            pos = np.stack([switch.final_positions(row) for row in valid])
        else:
            pos = np.empty(valid.shape, dtype=np.int64)
    elif routing is not None and switch.m == switch.n:
        pos = np.asarray(routing)
        out = np.zeros(valid.shape, dtype=bool)
        rows, cols = np.nonzero(valid & (pos >= 0))
        out[rows, pos[rows, cols]] = True
        return out
    else:
        return None
    out = np.zeros(valid.shape, dtype=bool)
    rows, cols = np.nonzero(valid)
    out[rows, pos[rows, cols]] = True
    return out


def scalar_parity_failures(
    switch, valid: np.ndarray, batch_routing: np.ndarray, indices
) -> list[tuple[int, str]]:
    """Rows of ``valid`` (restricted to ``indices``) where the scalar
    ``setup`` oracle disagrees with the batched routing."""
    failures: list[tuple[int, str]] = []
    for i in indices:
        expected = switch.setup(valid[i]).input_to_output
        got = batch_routing[i]
        if not np.array_equal(expected, got):
            bad = np.flatnonzero(expected != got)
            failures.append(
                (
                    int(i),
                    f"setup_batch diverges from setup at inputs {bad.tolist()}"
                    f" (scalar {expected[bad].tolist()},"
                    f" batch {np.asarray(got)[bad].tolist()})",
                )
            )
    return failures


def gate_parity_failures(
    circuit: Circuit,
    out_wires: list[int],
    valid: np.ndarray,
    expected_occupancy: np.ndarray,
) -> list[tuple[int, str]]:
    """Trials where the bit-parallel netlist simulation disagrees with
    the functional occupancy bits."""
    values = evaluate_packed(circuit, np.asarray(valid, dtype=bool))
    gate_bits = values[:, out_wires]
    mismatch = gate_bits != expected_occupancy
    failures: list[tuple[int, str]] = []
    for i in np.flatnonzero(mismatch.any(axis=1)):
        bad = np.flatnonzero(mismatch[i])
        failures.append(
            (
                int(i),
                f"gate netlist diverges at positions {bad.tolist()}"
                f" (gates {gate_bits[i, bad].astype(int).tolist()},"
                f" functional {expected_occupancy[i, bad].astype(int).tolist()})",
            )
        )
    return failures


def differential_check(
    switch,
    valid: np.ndarray,
    *,
    scalar_rows: int = 64,
    use_gates: bool = True,
) -> list[str]:
    """Run one pattern batch through every available execution path and
    return human-readable divergence messages (empty = all paths agree).

    Standalone entry point for downstream users; the certifier performs
    the same comparisons incrementally with violation bookkeeping.
    """
    from repro.verify.patterns import pattern_hex

    valid2d = np.asarray(valid, dtype=bool)
    if valid2d.ndim == 1:
        valid2d = valid2d[None, :]
    messages: list[str] = []
    batch = switch.setup_batch(valid2d)
    stride = max(1, valid2d.shape[0] // max(1, scalar_rows))
    indices = range(0, valid2d.shape[0], stride)
    for row, msg in scalar_parity_failures(
        switch, valid2d, batch.input_to_output, indices
    ):
        messages.append(f"trial {row} [{pattern_hex(valid2d[row])}]: {msg}")
    if use_gates:
        netlist = netlist_for(switch)
        occupancy = output_occupancy(
            switch, valid2d, routing=batch.input_to_output
        )
        if netlist is not None and occupancy is not None:
            for row, msg in gate_parity_failures(*netlist, valid2d, occupancy):
                messages.append(f"trial {row} [{pattern_hex(valid2d[row])}]: {msg}")
    return messages
