"""Valid-bit pattern enumeration for the certification tiers.

The certifier proves the paper's combinatorial contracts by running a
switch over *every* valid-bit pattern when that is feasible, and over a
deterministic stratified cover otherwise:

* **full enumeration** — all ``2^n`` patterns for ``n ≤ ~16``, emitted
  as ``(B, n)`` bool chunks for the batch engine;
* **per-k enumeration** — all ``C(n, k)`` patterns with exactly ``k``
  valid bits when that count fits a budget (the contract of Section 1
  is stated per k, so this is the natural stratification);
* **stratified sampling** — when ``C(n, k)`` exceeds the budget, a
  deterministic sample seeded by ``(n, k)`` plus the structural corner
  patterns (leading block, trailing block, even spread) that the
  nearsorting proofs treat as extremal.

Everything here is deterministic: the same call always yields the same
patterns, so a certificate names exactly the evidence it checked.
"""

from __future__ import annotations

import math
from itertools import combinations, islice
from typing import Iterator

import numpy as np

from repro._util.rng import default_rng
from repro.errors import ConfigurationError

#: Patterns-per-chunk fed to ``setup_batch`` by the iterators below.
DEFAULT_CHUNK = 4096

#: Seed domain for the stratified samplers (mixed with (n, k)).
_SAMPLE_SEED = 0xCE27


def pattern_count(n: int, k: int) -> int:
    """``C(n, k)``: the number of valid-bit patterns with exactly k 1s."""
    if not 0 <= k <= n:
        raise ConfigurationError(f"k={k} out of range for n={n}")
    return math.comb(n, k)


def all_patterns(n: int, *, chunk: int = DEFAULT_CHUNK) -> Iterator[np.ndarray]:
    """Every one of the ``2^n`` valid-bit patterns, in numeric order,
    as ``(B, n)`` bool chunks (bit i of the pattern index = input i)."""
    if n < 0:
        raise ConfigurationError(f"n must be non-negative, got {n}")
    if n > 24:
        raise ConfigurationError(
            f"refusing to enumerate 2^{n} patterns; use per-k enumeration"
        )
    total = 1 << n
    shifts = np.arange(n, dtype=np.uint32)
    for start in range(0, total, chunk):
        idx = np.arange(start, min(start + chunk, total), dtype=np.uint32)
        yield ((idx[:, None] >> shifts) & 1).astype(bool)


def _corner_patterns(n: int, k: int) -> np.ndarray:
    """The structural corners for load k: leading block, trailing
    block, and an evenly spread pattern (extremal for nearsorting)."""
    corners = np.zeros((3, n), dtype=bool)
    corners[0, :k] = True
    corners[1, n - k :] = True
    if k:
        corners[2, np.linspace(0, n - 1, num=k).round().astype(np.int64)] = True
    return np.unique(corners, axis=0)


def patterns_with_k(
    n: int,
    k: int,
    *,
    limit: int | None = None,
    chunk: int = DEFAULT_CHUNK,
) -> tuple[bool, Iterator[np.ndarray]]:
    """Patterns with exactly ``k`` valid bits.

    Returns ``(exhaustive, chunks)``.  When ``C(n, k) ≤ limit`` (or no
    limit is given) every pattern is enumerated and ``exhaustive`` is
    True; otherwise a deterministic stratified sample of ``limit``
    patterns (corners first) is produced.
    """
    total = pattern_count(n, k)
    if limit is None or total <= limit:
        return True, _exact_k_chunks(n, k, chunk)
    return False, _sampled_k_chunks(n, k, limit, chunk)


def _exact_k_chunks(n: int, k: int, chunk: int) -> Iterator[np.ndarray]:
    combos = combinations(range(n), k)
    while True:
        block = list(islice(combos, chunk))
        if not block:
            return
        out = np.zeros((len(block), n), dtype=bool)
        if k:
            rows = np.repeat(np.arange(len(block)), k)
            out[rows, np.array(block, dtype=np.int64).reshape(-1)] = True
        yield out


def _sampled_k_chunks(n: int, k: int, limit: int, chunk: int) -> Iterator[np.ndarray]:
    corners = _corner_patterns(n, k)
    rng = default_rng((_SAMPLE_SEED << 20) ^ (n << 8) ^ k)
    remaining = max(0, limit - corners.shape[0])
    random = np.zeros((remaining, n), dtype=bool)
    if remaining and k:
        # Row-wise k-subsets: the first k slots of a random argsort.
        picks = rng.random((remaining, n)).argsort(axis=1)[:, :k]
        random[np.repeat(np.arange(remaining), k), picks.reshape(-1)] = True
    sample = np.concatenate([corners, random], axis=0)[:limit]
    for start in range(0, sample.shape[0], chunk):
        yield sample[start : start + chunk]


def pattern_hex(valid: np.ndarray) -> str:
    """Compact reproducible encoding of one valid-bit pattern: the hex
    of its big-endian packed bits (decode with :func:`pattern_from_hex`)."""
    bits = np.asarray(valid).astype(np.uint8).reshape(-1)
    return np.packbits(bits).tobytes().hex()


def pattern_from_hex(encoded: str, n: int) -> np.ndarray:
    """Inverse of :func:`pattern_hex`: the length-``n`` bool pattern."""
    packed = np.frombuffer(bytes.fromhex(encoded), dtype=np.uint8)
    bits = np.unpackbits(packed)
    if bits.size < n:
        raise ConfigurationError(f"encoded pattern too short for n={n}")
    return bits[:n].astype(bool)
