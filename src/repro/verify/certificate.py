"""Machine-readable certification results.

A :class:`Certificate` records exactly what was proven about one switch
configuration: which tier ran (exhaustive / stratified), how many
patterns were checked per load k, which execution paths were compared
(batch engine, scalar oracle, gate-level netlist), the worst measured
nearsortedness against the theorem bound, and every violation found.
``repro certify`` serialises certificates as JSON artifacts; CI uploads
them so each commit carries its own proof transcript.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.errors import ReproError

#: Version tag of the certificate JSON layout.
CERTIFICATE_SCHEMA = "repro.verify/certificate@1"


@dataclass(frozen=True)
class KSlice:
    """Evidence for one load level: ``count`` patterns with exactly
    ``k`` valid bits were checked, all ``C(n, k)`` of them when
    ``exhaustive``."""

    k: int
    count: int
    exhaustive: bool


@dataclass(frozen=True)
class Violation:
    """One contract breach, with everything needed to replay it."""

    check: str  # "contract" | "epsilon" | "scalar-parity" | "gate-parity" | "metamorphic"
    k: int
    pattern: str  # pattern_hex encoding of the valid bits
    message: str


@dataclass
class Certificate:
    """The result of certifying one switch configuration."""

    design: str
    params: dict
    switch: str
    n: int
    m: int
    alpha: float
    guaranteed_capacity: int
    tier: str  # "exhaustive" | "stratified"
    paths: list[str] = field(default_factory=list)
    per_k: list[KSlice] = field(default_factory=list)
    total_patterns: int = 0
    epsilon_bound: int | None = None
    worst_epsilon: int | None = None
    checks: dict = field(default_factory=dict)
    violations: list[Violation] = field(default_factory=list)
    violations_truncated: bool = False

    @property
    def ok(self) -> bool:
        return not self.violations and not self.violations_truncated

    @property
    def exhaustive(self) -> bool:
        """True when every load level was fully enumerated."""
        return all(s.exhaustive for s in self.per_k)

    @property
    def epsilon_margin(self) -> int | None:
        """Slack between the theorem bound and the worst measured ε."""
        if self.epsilon_bound is None or self.worst_epsilon is None:
            return None
        return self.epsilon_bound - self.worst_epsilon

    def as_dict(self) -> dict:
        doc = {
            "schema": CERTIFICATE_SCHEMA,
            "ok": self.ok,
            **asdict(self),
            "exhaustive": self.exhaustive,
            "epsilon_margin": self.epsilon_margin,
        }
        return doc

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)


def write_certificate(certificate: Certificate, path: str | Path) -> Path:
    """Write one certificate JSON (parent directories created)."""
    target = Path(path)
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(certificate.to_json() + "\n")
    except OSError as exc:
        raise ReproError(f"cannot write certificate to {target}: {exc}") from exc
    return target


def read_certificate_dict(path: str | Path) -> dict:
    """Load a certificate JSON document, checking its schema tag."""
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        raise ReproError(f"cannot read certificate {path}: {exc}") from exc
    if doc.get("schema") != CERTIFICATE_SCHEMA:
        raise ReproError(
            f"{path} is not a {CERTIFICATE_SCHEMA} document "
            f"(schema={doc.get('schema')!r})"
        )
    return doc
