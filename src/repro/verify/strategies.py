"""Reusable Hypothesis strategies for switch and circuit properties.

Downstream switch authors get property-based coverage for free::

    from hypothesis import given
    from repro.verify import strategies as vst

    @given(valid=vst.valid_bits(64))
    def test_my_switch(valid):
        check(MySwitch(64, 48).setup(valid))

Importing this module requires ``hypothesis`` (a test-only dependency);
the rest of :mod:`repro.verify` stays importable without it, which is
why ``repro.verify.__init__`` does not re-export these names.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.gates.netlist import Circuit, Op

#: Gate operations a random netlist may draw (INPUT handled separately).
_LOGIC_OPS = (Op.BUF, Op.NOT, Op.AND, Op.OR, Op.XOR, Op.NAND, Op.NOR)
_VARIADIC_OPS = (Op.AND, Op.OR, Op.XOR, Op.NAND, Op.NOR)


def valid_bits(n: int) -> st.SearchStrategy[np.ndarray]:
    """A length-``n`` boolean valid-bit vector, any load."""
    return st.lists(st.booleans(), min_size=n, max_size=n).map(
        lambda xs: np.array(xs, dtype=bool)
    )


def valid_bits_with_k(n: int) -> st.SearchStrategy[tuple[int, np.ndarray]]:
    """``(k, pattern)`` with exactly k valid bits, k drawn 0..n."""

    def build(args: tuple[int, int]) -> tuple[int, np.ndarray]:
        k, seed = args
        out = np.zeros(n, dtype=bool)
        if k:
            rng = np.random.default_rng(seed)
            out[rng.choice(n, size=k, replace=False)] = True
        return k, out

    return st.tuples(
        st.integers(min_value=0, max_value=n),
        st.integers(min_value=0, max_value=2**31 - 1),
    ).map(build)


def bit_batches(
    n: int, *, min_batch: int = 1, max_batch: int = 130
) -> st.SearchStrategy[np.ndarray]:
    """A ``(B, n)`` boolean batch; the default max crosses the packed
    evaluator's 64-trial word boundary twice."""
    return st.integers(min_value=min_batch, max_value=max_batch).flatmap(
        lambda b: st.lists(
            st.lists(st.booleans(), min_size=n, max_size=n),
            min_size=b,
            max_size=b,
        ).map(lambda rows: np.array(rows, dtype=bool))
    )


@st.composite
def circuits(
    draw: st.DrawFn,
    *,
    max_inputs: int = 6,
    max_gates: int = 40,
    max_fan_in: int = 4,
) -> Circuit:
    """A random topologically ordered combinational netlist: random
    gate types, fan-ins, and wiring depth — not just the circuits the
    switch builders happen to produce."""
    n_inputs = draw(st.integers(min_value=1, max_value=max_inputs))
    circuit = Circuit()
    for i in range(n_inputs):
        circuit.input(name=f"v{i}")
    n_gates = draw(st.integers(min_value=1, max_value=max_gates))
    for _ in range(n_gates):
        op = draw(st.sampled_from(_LOGIC_OPS + (Op.CONST0, Op.CONST1)))
        wires = st.integers(min_value=0, max_value=circuit.n_wires - 1)
        if op in (Op.CONST0, Op.CONST1):
            circuit.add_gate(op)
        elif op in (Op.BUF, Op.NOT):
            circuit.add_gate(op, draw(wires))
        else:
            fan_in = draw(st.integers(min_value=2, max_value=max_fan_in))
            circuit.add_gate(op, *(draw(wires) for _ in range(fan_in)))
    return circuit


def switch_configs(
    *, designs: list[str] | None = None
) -> st.SearchStrategy[tuple[str, dict]]:
    """Registry-driven ``(name, params)`` pairs from the designs'
    declared certification configs — the same configurations ``repro
    certify`` proves exhaustively."""
    from repro.switches.registry import certify_configs

    configs = certify_configs(designs)
    return st.sampled_from(configs)


@st.composite
def fault_scenarios(
    draw: st.DrawFn,
    switch,
    *,
    max_faults: int = 3,
    classes: str = "structural",
    flaky: bool = False,
) -> "FaultScenario":
    """A random :class:`repro.faults.FaultScenario` drawn from the
    injectable fault sites of ``switch`` (class presets as in
    :mod:`repro.faults.sampling`), optionally with flaky pins.

    The draw picks distinct sites, so compiled scenarios never conflict
    (e.g. a pin stuck both at 0 and 1).
    """
    from repro.faults import FlakyPinFault, fault_sites
    from repro.faults.scenario import FaultScenario

    sites = [fault for _, fault in fault_sites(switch, classes=classes)]
    count = draw(st.integers(min_value=1, max_value=max_faults))
    indices = draw(
        st.lists(
            st.integers(min_value=0, max_value=len(sites) - 1),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    faults = [sites[i] for i in indices]
    if flaky:
        n_flaky = draw(st.integers(min_value=0, max_value=2))
        pins = draw(
            st.lists(
                st.integers(min_value=0, max_value=switch.n - 1),
                min_size=n_flaky,
                max_size=n_flaky,
                unique=True,
            )
        )
        for pin in pins:
            p = draw(st.floats(min_value=0.05, max_value=0.5))
            faults.append(FlakyPinFault(pin, p))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return FaultScenario(name="hypothesis", faults=tuple(faults), seed=seed)


def workload_specs(
    *, ports: tuple[int, ...] = (4, 8, 16), max_duration: float = 25.0
) -> st.SearchStrategy["WorkloadSpec"]:
    """A random :class:`repro.network.flows.WorkloadSpec` — port count,
    offered load (including overload), arrival horizon, size mix, and
    seed — sized for property tests, not paper-scale studies."""
    from repro.network.flows import WorkloadSpec, size_distribution_names

    return st.builds(
        WorkloadSpec,
        n=st.sampled_from(ports),
        load=st.floats(min_value=0.1, max_value=1.2),
        duration=st.floats(min_value=2.0, max_value=max_duration),
        sizes=st.sampled_from(size_distribution_names()),
        fixed_size=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )


@st.composite
def fabric_topologies(draw: st.DrawFn, n: int = 16) -> "FabricStage":
    """A random fabric stage of width ``n`` for the event-driven flow
    simulator: any of the four head-to-head models with its knobs
    (concentrator width, knockout lanes/FIFO depth, rotor hold time)
    drawn too.  ``n`` should be a power of four so every fabric is
    constructible (revsort needs a square, the fat-tree a power of
    two)."""
    from repro.network.flows import build_fabric, fabric_names

    name = draw(st.sampled_from(fabric_names()))
    params: dict[str, object] = {}
    if name == "concentrator":
        params["m"] = draw(st.sampled_from([max(1, n // 2), max(1, (3 * n) // 4)]))
    elif name == "knockout":
        params["lanes"] = draw(st.integers(min_value=1, max_value=4))
        params["fifo_depth"] = draw(st.integers(min_value=1, max_value=8))
    elif name == "rotor":
        params["slot_cycles"] = draw(st.integers(min_value=1, max_value=3))
    return build_fabric(name, n, **params)


def mesh_orderings(side: int) -> st.SearchStrategy[np.ndarray]:
    """A random permutation of the ``side × side`` flat positions —
    candidate mesh readout orderings for the analysis helpers."""
    return st.permutations(list(range(side * side))).map(
        lambda p: np.array(p, dtype=np.int64)
    )
