"""repro.verify — exhaustive + property-based certification.

Four pillars above the sampled checks of :mod:`repro.testing`:

* **exhaustive certification** (:mod:`repro.verify.exhaustive`) — for
  small n, enumerate *every* valid-bit pattern (or every load level
  with per-k budgets for the larger plan-based switches) and prove the
  (n, m, α) contract and ε-nearsortedness bound hold with zero
  counterexamples;
* **differential oracles** (:mod:`repro.verify.differential`) — run
  each pattern through the scalar ``setup``, the vectorized
  ``setup_batch``, and the gate-level netlist where one exists, and
  fail on any divergence;
* **metamorphic relations** (:mod:`repro.verify.metamorphic`) —
  oracle-free cross-run invariants (load permutation, monotone growth,
  payload independence);
* **Hypothesis strategies** (:mod:`repro.verify.strategies`, imported
  explicitly because it needs the test-only ``hypothesis`` package) —
  reusable generators for valid bits, registry configs, mesh orderings,
  and random netlists.

``repro certify`` drives all of this from the CLI and emits
machine-readable certificate JSONs (:mod:`repro.verify.certificate`);
see ``docs/verification.md``.
"""

from repro.verify.certificate import (
    CERTIFICATE_SCHEMA,
    Certificate,
    KSlice,
    Violation,
    read_certificate_dict,
    write_certificate,
)
from repro.verify.checkpoint import CertifyCheckpoint, certify_fingerprint
from repro.verify.differential import (
    MAX_GATE_N,
    differential_check,
    netlist_for,
    output_occupancy,
)
from repro.verify.exhaustive import (
    CertifyOptions,
    certify_design,
    certify_registry,
    certify_switch,
    quick_options,
)
from repro.verify.metamorphic import metamorphic_failures
from repro.verify.patterns import (
    all_patterns,
    pattern_count,
    pattern_from_hex,
    pattern_hex,
    patterns_with_k,
)

__all__ = [
    "CERTIFICATE_SCHEMA",
    "Certificate",
    "CertifyCheckpoint",
    "CertifyOptions",
    "KSlice",
    "MAX_GATE_N",
    "Violation",
    "all_patterns",
    "certify_design",
    "certify_fingerprint",
    "certify_registry",
    "certify_switch",
    "differential_check",
    "metamorphic_failures",
    "netlist_for",
    "output_occupancy",
    "pattern_count",
    "pattern_from_hex",
    "pattern_hex",
    "patterns_with_k",
    "quick_options",
    "read_certificate_dict",
    "write_certificate",
]
