"""Exhaustive and stratified certification of concentrator switches.

Where :func:`repro.testing.check_concentrator` samples random trials,
:func:`certify_switch` *enumerates*: for small n every one of the
``2^n`` valid-bit patterns goes through the batch engine and the full
contract — (n, m, α) routing, path disjointness, the ε-nearsortedness
bound, scalar/batch/gate differential parity, and the metamorphic
relations.  The result is a :class:`~repro.verify.certificate.Certificate`
that states exactly what was proven and on how much evidence.

Two tiers (see ``docs/verification.md``):

* ``exhaustive`` — ``2^n ≤ max_total``: every pattern, every k;
* ``stratified`` — larger plan-based switches: every load level
  ``k ∈ [0, n]`` is covered, exhaustively when ``C(n, k)`` fits the
  per-k budget and by a deterministic corner+random sample otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

import numpy as np

from repro import obs
from repro._util.rng import default_rng
from repro.core.concentration import validate_partial_concentration
from repro.engine import nearsortedness_batch, validate_batch_partial_concentration
from repro.errors import ReproError
from repro.verify.certificate import Certificate, KSlice, Violation
from repro.verify.differential import (
    gate_parity_failures,
    netlist_for,
    output_occupancy,
    scalar_parity_failures,
)
from repro.verify.metamorphic import metamorphic_failures
from repro.verify.patterns import (
    DEFAULT_CHUNK,
    all_patterns,
    pattern_count,
    pattern_hex,
    patterns_with_k,
)


@dataclass(frozen=True)
class CertifyOptions:
    """Budgets and toggles for one certification run."""

    #: Enumerate all ``2^n`` patterns when that total fits here.
    max_total: int = 1 << 16
    #: Stratified tier: per-k pattern budget.
    max_per_k: int = 512
    #: Patterns per ``setup_batch`` call.
    chunk: int = DEFAULT_CHUNK
    #: Scalar-oracle parity checks spread across the run (0 disables).
    scalar_rows: int = 256
    #: Metamorphic relation checks spread across the run (0 disables).
    metamorphic_rows: int = 48
    #: Compare against the gate-level netlist where one exists.
    check_gates: bool = True
    #: Stop after recording this many violations.
    max_violations: int = 20
    #: Seed for the metamorphic permutations (patterns are deterministic).
    seed: int = 0x5EED


def _iter_tiers(
    n: int, options: CertifyOptions
) -> tuple[str, Iterator[tuple[int | None, bool, Iterator[np.ndarray]]]]:
    """The pattern source: ``(tier, slices)`` where each slice is
    ``(k, exhaustive, chunks)`` (k None = mixed loads, full tier)."""
    if (1 << n) <= options.max_total:
        def full() -> Iterator[tuple[int | None, bool, Iterator[np.ndarray]]]:
            yield None, True, all_patterns(n, chunk=options.chunk)

        return "exhaustive", full()

    def stratified() -> Iterator[tuple[int | None, bool, Iterator[np.ndarray]]]:
        for k in range(n + 1):
            exhaustive, chunks = patterns_with_k(
                n, k, limit=options.max_per_k, chunk=options.chunk
            )
            yield k, exhaustive, chunks

    return "stratified", stratified()


def _planned_total(n: int, options: CertifyOptions) -> int:
    if (1 << n) <= options.max_total:
        return 1 << n
    return sum(min(pattern_count(n, k), options.max_per_k) for k in range(n + 1))


def _localize_contract_rows(spec, chunk: np.ndarray, routing: np.ndarray) -> list[tuple[int, str]]:
    """Row-level contract check, used to pinpoint offenders after the
    vectorized validator (or setup itself) reports a batch failure."""
    bad: list[tuple[int, str]] = []
    for i in range(chunk.shape[0]):
        try:
            validate_partial_concentration(spec, chunk[i], routing[i])
        except ReproError as exc:
            bad.append((i, str(exc)))
    return bad


def certify_switch(
    switch,
    *,
    design: str = "custom",
    params: dict | None = None,
    options: CertifyOptions | None = None,
) -> Certificate:
    """Certify one switch instance; never raises on contract failures —
    every violation is recorded in the returned certificate."""
    options = options or CertifyOptions()
    spec = switch.spec
    has_nearsort = hasattr(switch, "final_positions") and hasattr(
        switch, "epsilon_bound"
    )
    tier, slices = _iter_tiers(switch.n, options)
    total_planned = _planned_total(switch.n, options)
    scalar_stride = (
        max(1, total_planned // options.scalar_rows) if options.scalar_rows else 0
    )
    meta_stride = (
        max(1, total_planned // options.metamorphic_rows)
        if options.metamorphic_rows
        else 0
    )
    netlist = netlist_for(switch) if options.check_gates else None

    cert = Certificate(
        design=design,
        params=dict(params or {}),
        switch=repr(switch),
        n=switch.n,
        m=switch.m,
        alpha=float(spec.alpha),
        guaranteed_capacity=int(spec.guaranteed_capacity),
        tier=tier,
        paths=["batch"]
        + (["scalar"] if scalar_stride else [])
        + (["gates"] if netlist is not None else []),
        epsilon_bound=int(switch.epsilon_bound) if has_nearsort else None,
        worst_epsilon=0 if has_nearsort else None,
    )
    checks = {"contract": 0, "epsilon": 0, "scalar_parity": 0, "gate_parity": 0,
              "metamorphic": 0}
    k_counts: dict[int, int] = {}
    k_exhaustive: dict[int, bool] = {}
    rng = default_rng(options.seed)
    seen = 0

    def record(check: str, k: int, pattern: np.ndarray, message: str) -> bool:
        """Add one violation; returns False once the cap is hit."""
        obs.counter("verify.violations", design=design, check=check).inc()
        if len(cert.violations) >= options.max_violations:
            cert.violations_truncated = True
            return False
        cert.violations.append(
            Violation(check=check, k=k, pattern=pattern_hex(pattern), message=message)
        )
        return True

    with obs.span("verify.certify", design=design, n=switch.n, m=switch.m):
        for k_slice, exhaustive, chunks in slices:
            if cert.violations_truncated:
                break
            if k_slice is not None:
                k_exhaustive[k_slice] = exhaustive
            for chunk in chunks:
                if cert.violations_truncated:
                    break
                batch_size = chunk.shape[0]
                ks = chunk.sum(axis=1).astype(np.int64)
                for k, count in zip(*np.unique(ks, return_counts=True)):
                    k_counts[int(k)] = k_counts.get(int(k), 0) + int(count)
                    if k_slice is None:
                        k_exhaustive[int(k)] = exhaustive
                obs.counter("verify.patterns", design=design).inc(batch_size)

                # -- batch contract ------------------------------------
                try:
                    batch = switch.setup_batch(chunk)
                except ReproError as exc:
                    record("contract", int(ks[0]), chunk[0],
                           f"setup_batch raised {exc!r}")
                    continue
                checks["contract"] += batch_size
                try:
                    validate_batch_partial_concentration(spec, batch)
                except ReproError:
                    for i, msg in _localize_contract_rows(
                        spec, chunk, batch.input_to_output
                    ):
                        if not record("contract", int(ks[i]), chunk[i], msg):
                            break

                # -- ε-nearsortedness against the theorem bound --------
                occupancy = output_occupancy(
                    switch, chunk, routing=batch.input_to_output
                )
                if has_nearsort and occupancy is not None:
                    eps = nearsortedness_batch(occupancy)
                    checks["epsilon"] += batch_size
                    cert.worst_epsilon = max(
                        int(cert.worst_epsilon or 0), int(eps.max(initial=0))
                    )
                    for i in np.flatnonzero(eps > cert.epsilon_bound):
                        if not record(
                            "epsilon", int(ks[i]), chunk[i],
                            f"measured epsilon {int(eps[i])} exceeds bound "
                            f"{cert.epsilon_bound}",
                        ):
                            break

                # -- differential: scalar oracle -----------------------
                if scalar_stride:
                    offsets = np.arange(batch_size)
                    picked = offsets[(seen + offsets) % scalar_stride == 0]
                    checks["scalar_parity"] += picked.size
                    for i, msg in scalar_parity_failures(
                        switch, chunk, batch.input_to_output, picked
                    ):
                        if not record("scalar-parity", int(ks[i]), chunk[i], msg):
                            break

                # -- differential: gate-level netlist ------------------
                if netlist is not None and occupancy is not None:
                    checks["gate_parity"] += batch_size
                    for i, msg in gate_parity_failures(
                        *netlist, chunk, occupancy
                    ):
                        if not record("gate-parity", int(ks[i]), chunk[i], msg):
                            break

                # -- metamorphic relations -----------------------------
                if meta_stride:
                    offsets = np.arange(batch_size)
                    picked = offsets[(seen + offsets) % meta_stride == 0]
                    checks["metamorphic"] += picked.size
                    for i in picked:
                        for msg in metamorphic_failures(switch, chunk[i], rng):
                            record("metamorphic", int(ks[i]), chunk[i], msg)
                seen += batch_size

    cert.checks = checks
    cert.total_patterns = seen
    cert.per_k = [
        KSlice(k=k, count=k_counts[k], exhaustive=k_exhaustive.get(k, False))
        for k in sorted(k_counts)
    ]
    return cert


def certify_design(
    name: str, params: dict, *, options: CertifyOptions | None = None
) -> Certificate:
    """Build a registered design and certify it."""
    from repro.switches.registry import build_switch

    switch = build_switch(name, **params)
    return certify_switch(switch, design=name, params=params, options=options)


def certify_registry(
    *,
    designs: list[str] | None = None,
    options: CertifyOptions | None = None,
) -> list[Certificate]:
    """Certify every registered design at its declared certification
    configs (see :func:`repro.switches.registry.certify_configs`)."""
    from repro.switches.registry import certify_configs

    certificates = []
    for name, params in certify_configs(designs):
        certificates.append(certify_design(name, params, options=options))
    return certificates


def quick_options() -> CertifyOptions:
    """A cheap profile for tests and smoke runs: full enumeration only
    up to 2^12, small per-k budgets."""
    return replace(
        CertifyOptions(),
        max_total=1 << 12,
        max_per_k=64,
        scalar_rows=32,
        metamorphic_rows=8,
    )
