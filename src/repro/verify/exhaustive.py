"""Exhaustive and stratified certification of concentrator switches.

Where :func:`repro.testing.check_concentrator` samples random trials,
:func:`certify_switch` *enumerates*: for small n every one of the
``2^n`` valid-bit patterns goes through the batch engine and the full
contract — (n, m, α) routing, path disjointness, the ε-nearsortedness
bound, scalar/batch/gate differential parity, and the metamorphic
relations.  The result is a :class:`~repro.verify.certificate.Certificate`
that states exactly what was proven and on how much evidence.

Two tiers (see ``docs/verification.md``):

* ``exhaustive`` — ``2^n ≤ max_total``: every pattern, every k;
* ``stratified`` — larger plan-based switches: every load level
  ``k ∈ [0, n]`` is covered, exhaustively when ``C(n, k)`` fits the
  per-k budget and by a deterministic corner+random sample otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

import numpy as np

from repro import obs
from repro.core.concentration import validate_partial_concentration
from repro.engine import nearsortedness_batch, validate_batch_partial_concentration
from repro.errors import ReproError
from repro.verify.certificate import Certificate, KSlice, Violation
from repro.verify.differential import (
    gate_parity_failures,
    netlist_for,
    output_occupancy,
    scalar_parity_failures,
)
from repro.verify.metamorphic import metamorphic_failures
from repro.verify.patterns import (
    DEFAULT_CHUNK,
    all_patterns,
    pattern_count,
    pattern_hex,
    patterns_with_k,
)


@dataclass(frozen=True)
class CertifyOptions:
    """Budgets and toggles for one certification run."""

    #: Enumerate all ``2^n`` patterns when that total fits here.
    max_total: int = 1 << 16
    #: Stratified tier: per-k pattern budget.
    max_per_k: int = 512
    #: Patterns per ``setup_batch`` call.
    chunk: int = DEFAULT_CHUNK
    #: Scalar-oracle parity checks spread across the run (0 disables).
    scalar_rows: int = 256
    #: Metamorphic relation checks spread across the run (0 disables).
    metamorphic_rows: int = 48
    #: Compare against the gate-level netlist where one exists.
    check_gates: bool = True
    #: Stop after recording this many violations.
    max_violations: int = 20
    #: Seed for the metamorphic permutations (patterns are deterministic).
    seed: int = 0x5EED


def _iter_tiers(
    n: int, options: CertifyOptions
) -> tuple[str, Iterator[tuple[int | None, bool, Iterator[np.ndarray]]]]:
    """The pattern source: ``(tier, slices)`` where each slice is
    ``(k, exhaustive, chunks)`` (k None = mixed loads, full tier)."""
    if (1 << n) <= options.max_total:
        def full() -> Iterator[tuple[int | None, bool, Iterator[np.ndarray]]]:
            yield None, True, all_patterns(n, chunk=options.chunk)

        return "exhaustive", full()

    def stratified() -> Iterator[tuple[int | None, bool, Iterator[np.ndarray]]]:
        for k in range(n + 1):
            exhaustive, chunks = patterns_with_k(
                n, k, limit=options.max_per_k, chunk=options.chunk
            )
            yield k, exhaustive, chunks

    return "stratified", stratified()


def _planned_total(n: int, options: CertifyOptions) -> int:
    if (1 << n) <= options.max_total:
        return 1 << n
    return sum(min(pattern_count(n, k), options.max_per_k) for k in range(n + 1))


def _localize_contract_rows(spec, chunk: np.ndarray, routing: np.ndarray) -> list[tuple[int, str]]:
    """Row-level contract check, used to pinpoint offenders after the
    vectorized validator (or setup itself) reports a batch failure."""
    bad: list[tuple[int, str]] = []
    for i in range(chunk.shape[0]):
        try:
            validate_partial_concentration(spec, chunk[i], routing[i])
        except ReproError as exc:
            bad.append((i, str(exc)))
    return bad


def _chunk_rng(seed: int, index: int) -> np.random.Generator:
    """Chunk-local metamorphic generator, derived from the run seed and
    the chunk's position — never from a shared sequential stream — so
    serial and sharded certification draw identical permutations."""
    return np.random.default_rng(np.random.SeedSequence(entropy=[seed, index]))


def _examine_chunk(switch, chunk: np.ndarray, config: dict) -> dict:
    """Run every check of one pattern chunk and return a pure-data
    report (pickle-safe: this is the unit of work the multiprocess
    certifier ships to pool workers).

    ``sections`` lists ``(check, break_on_cap, events)`` in the
    canonical check order, each event being ``(k, pattern_hex,
    message)`` — exactly what :func:`certify_switch`'s fold turns into
    :class:`Violation` records, so serial and parallel certification
    produce identical certificates.
    """
    spec = switch.spec
    offset = config["offset"]
    batch_size = chunk.shape[0]
    ks = chunk.sum(axis=1).astype(np.int64)
    k_counts: dict[int, int] = {}
    for k, count in zip(*np.unique(ks, return_counts=True)):
        k_counts[int(k)] = k_counts.get(int(k), 0) + int(count)
    checks = {"contract": 0, "epsilon": 0, "scalar_parity": 0, "gate_parity": 0,
              "metamorphic": 0}
    sections: list[tuple[str, bool, list[tuple[int, str, str]]]] = []
    report = {
        "index": config["index"],
        "batch_size": batch_size,
        "k_counts": k_counts,
        "checks": checks,
        "worst_eps": None,
        "sections": sections,
    }

    def event(k: int, row: np.ndarray, message: str) -> tuple[int, str, str]:
        return int(k), pattern_hex(row), message

    # -- batch contract ------------------------------------------------
    try:
        batch = switch.setup_batch(chunk)
    except ReproError as exc:
        sections.append(
            ("contract", True,
             [event(ks[0], chunk[0], f"setup_batch raised {exc!r}")])
        )
        return report
    checks["contract"] += batch_size
    contract_events: list[tuple[int, str, str]] = []
    try:
        validate_batch_partial_concentration(spec, batch)
    except ReproError:
        for i, msg in _localize_contract_rows(spec, chunk, batch.input_to_output):
            contract_events.append(event(ks[i], chunk[i], msg))
    sections.append(("contract", True, contract_events))

    # -- ε-nearsortedness against the theorem bound --------------------
    occupancy = output_occupancy(switch, chunk, routing=batch.input_to_output)
    epsilon_bound = config["epsilon_bound"]
    if config["has_nearsort"] and occupancy is not None:
        eps = nearsortedness_batch(occupancy)
        checks["epsilon"] += batch_size
        report["worst_eps"] = int(eps.max(initial=0))
        sections.append(
            ("epsilon", True,
             [event(ks[i], chunk[i],
                    f"measured epsilon {int(eps[i])} exceeds bound "
                    f"{epsilon_bound}")
              for i in np.flatnonzero(eps > epsilon_bound)])
        )

    # -- differential: scalar oracle -----------------------------------
    scalar_stride = config["scalar_stride"]
    if scalar_stride:
        offsets = np.arange(batch_size)
        picked = offsets[(offset + offsets) % scalar_stride == 0]
        checks["scalar_parity"] += picked.size
        sections.append(
            ("scalar-parity", True,
             [event(ks[i], chunk[i], msg)
              for i, msg in scalar_parity_failures(
                  switch, chunk, batch.input_to_output, picked)])
        )

    # -- differential: gate-level netlist ------------------------------
    netlist = netlist_for(switch) if config["check_gates"] else None
    if netlist is not None and occupancy is not None:
        checks["gate_parity"] += batch_size
        sections.append(
            ("gate-parity", True,
             [event(ks[i], chunk[i], msg)
              for i, msg in gate_parity_failures(*netlist, chunk, occupancy)])
        )

    # -- metamorphic relations -----------------------------------------
    meta_stride = config["meta_stride"]
    if meta_stride:
        rng = _chunk_rng(config["seed"], config["index"])
        offsets = np.arange(batch_size)
        picked = offsets[(offset + offsets) % meta_stride == 0]
        checks["metamorphic"] += picked.size
        meta_events: list[tuple[int, str, str]] = []
        for i in picked:
            for msg in metamorphic_failures(switch, chunk[i], rng):
                meta_events.append(event(ks[i], chunk[i], msg))
        # The cap never stops the metamorphic scan (matching the
        # historical recording semantics), hence break_on_cap=False.
        sections.append(("metamorphic", False, meta_events))
    return report


def _certify_chunk_job(job: dict) -> dict:
    """Pool-worker entry point: examine one shipped chunk."""
    return _examine_chunk(job["switch"], job["chunk"], job["config"])


def certify_switch(
    switch,
    *,
    design: str = "custom",
    params: dict | None = None,
    options: CertifyOptions | None = None,
    workers: int = 1,
    checkpoint: str | None = None,
    supervisor_policy=None,
) -> Certificate:
    """Certify one switch instance; never raises on contract failures —
    every violation is recorded in the returned certificate.

    ``workers > 1`` fans the pattern chunks over the persistent
    process pool (:mod:`repro.engine.backends.pool`), supervised
    (:mod:`repro.engine.backends.supervisor`): a worker death or shard
    deadline costs a retry, never the run.  Chunk boundaries, check
    strides, and the per-chunk metamorphic generators depend only on
    the options, and the chunk reports are folded strictly in chunk
    order, so the certificate JSON is byte-identical for every worker
    count — and for any schedule of retries.

    ``checkpoint`` names a JSONL journal
    (:mod:`repro.verify.checkpoint`): each completed chunk report is
    persisted as it lands, finished chunks are skipped on resume, and
    the stored reports fold into the same positions a clean run would
    have put them — identical certificate, only unfinished work redone.
    """
    options = options or CertifyOptions()
    spec = switch.spec
    has_nearsort = hasattr(switch, "final_positions") and hasattr(
        switch, "epsilon_bound"
    )
    tier, slices = _iter_tiers(switch.n, options)
    total_planned = _planned_total(switch.n, options)
    scalar_stride = (
        max(1, total_planned // options.scalar_rows) if options.scalar_rows else 0
    )
    meta_stride = (
        max(1, total_planned // options.metamorphic_rows)
        if options.metamorphic_rows
        else 0
    )
    netlist = netlist_for(switch) if options.check_gates else None

    cert = Certificate(
        design=design,
        params=dict(params or {}),
        switch=repr(switch),
        n=switch.n,
        m=switch.m,
        alpha=float(spec.alpha),
        guaranteed_capacity=int(spec.guaranteed_capacity),
        tier=tier,
        paths=["batch"]
        + (["scalar"] if scalar_stride else [])
        + (["gates"] if netlist is not None else []),
        epsilon_bound=int(switch.epsilon_bound) if has_nearsort else None,
        worst_epsilon=0 if has_nearsort else None,
    )
    checks = {"contract": 0, "epsilon": 0, "scalar_parity": 0, "gate_parity": 0,
              "metamorphic": 0}
    k_counts: dict[int, int] = {}
    k_exhaustive: dict[int, bool] = {}
    seen = 0

    base_config = {
        "has_nearsort": has_nearsort,
        "epsilon_bound": cert.epsilon_bound,
        "scalar_stride": scalar_stride,
        "meta_stride": meta_stride,
        "check_gates": netlist is not None,
        "seed": options.seed,
    }

    def tasks() -> Iterator[tuple[dict, np.ndarray]]:
        """(config, chunk) pairs in enumeration order, tracking the
        pattern offset each chunk starts at."""
        offset = 0
        index = 0
        for k_slice, exhaustive, chunks in slices:
            if k_slice is not None:
                k_exhaustive[k_slice] = exhaustive
            for chunk in chunks:
                config = dict(
                    base_config,
                    index=index,
                    offset=offset,
                    k_slice=k_slice,
                    exhaustive=exhaustive,
                )
                yield config, chunk
                offset += chunk.shape[0]
                index += 1

    def record(check: str, k: int, hexpat: str, message: str) -> bool:
        """Add one violation; returns False once the cap is hit."""
        obs.counter("verify.violations", design=design, check=check).inc()
        if len(cert.violations) >= options.max_violations:
            cert.violations_truncated = True
            return False
        cert.violations.append(
            Violation(check=check, k=k, pattern=hexpat, message=message)
        )
        return True

    def fold(config: dict, report: dict) -> None:
        nonlocal seen
        batch_size = report["batch_size"]
        for k, count in report["k_counts"].items():
            k_counts[k] = k_counts.get(k, 0) + count
            if config["k_slice"] is None:
                k_exhaustive[k] = config["exhaustive"]
        obs.counter("verify.patterns", design=design).inc(batch_size)
        for name, delta in report["checks"].items():
            checks[name] += delta
        if report["worst_eps"] is not None:
            cert.worst_epsilon = max(
                int(cert.worst_epsilon or 0), report["worst_eps"]
            )
        for check, break_on_cap, events in report["sections"]:
            for k, hexpat, message in events:
                if not record(check, k, hexpat, message) and break_on_cap:
                    break
        seen += batch_size

    ckpt = None
    if checkpoint is not None:
        from repro.verify.checkpoint import CertifyCheckpoint, certify_fingerprint

        ckpt = CertifyCheckpoint(
            checkpoint,
            certify_fingerprint(design, params or {}, switch.n, switch.m, options),
        )

    try:
        with obs.span("verify.certify", design=design, n=switch.n, m=switch.m):
            if workers > 1:
                _certify_parallel(
                    switch, list(tasks()), fold, cert, workers,
                    policy=supervisor_policy, checkpoint=ckpt,
                )
            else:
                for config, chunk in tasks():
                    if cert.violations_truncated:
                        break
                    if ckpt is not None and ckpt.has(config["index"]):
                        fold(config, ckpt.report(config["index"]))
                        continue
                    report = _examine_chunk(switch, chunk, config)
                    if ckpt is not None:
                        ckpt.record(config["index"], report)
                    fold(config, report)
    finally:
        if ckpt is not None:
            ckpt.close()

    cert.checks = checks
    cert.total_patterns = seen
    cert.per_k = [
        KSlice(k=k, count=k_counts[k], exhaustive=k_exhaustive.get(k, False))
        for k in sorted(k_counts)
    ]
    return cert


def _certify_parallel(
    switch, tasks, fold, cert, workers: int, *, policy=None, checkpoint=None
) -> None:
    """Ship chunk tasks to the supervised worker pool and fold the
    reports in chunk order (stopping at violation truncation, like the
    serial loop).  Worker metric snapshots merge back in the same order
    with ``certify-<chunk>`` provenance.

    A ``checkpoint`` journal shifts work two ways: chunks it already
    holds are never submitted (their stored reports fold in place), and
    every fresh report is persisted the moment its shard completes —
    *completion* order, because that is what survives a kill; the fold
    below still runs in chunk order.
    """
    from repro.engine.backends.pool import shared_pool
    from repro.engine.backends.supervisor import ShardSupervisor, chaos_from_env
    from repro.obs.live.merge import merge_portable

    pool = shared_pool(workers)
    plan = getattr(switch, "_plan", None)
    plan_key = getattr(plan, "key", None)
    payload = pool.plan_payload([plan_key])
    todo = [
        (config, chunk)
        for config, chunk in tasks
        if checkpoint is None or not checkpoint.has(config["index"])
    ]
    parent = obs.get_registry()
    with parent.span("engine.shards", backend="certify", shards=len(todo)):
        # Ship the active trace context so each worker's spans link
        # back to this dispatch span (see repro.obs.tracectx).
        ctx = parent.tracer.context if parent.enabled else None
        dispatch_id = parent.tracer.active_span_id if ctx is not None else None
        chaos = chaos_from_env()
        jobs = []
        for config, chunk in todo:
            job = {
                "switch": switch,
                "chunk": chunk,
                "config": config,
                "shard": config["index"],
            }
            if payload:
                job["plans"] = payload
            if chaos:
                job["chaos"] = dict(chaos)
            if ctx is not None:
                job["trace"] = ctx.ship(
                    parent_id=dispatch_id, prefix=f"certify-{config['index']}"
                )
            jobs.append(job)

        def persist(position: int, outcome) -> None:
            if checkpoint is not None and outcome is not None:
                checkpoint.record(todo[position][0]["index"], outcome[0])

        fresh: dict[int, tuple] = {}
        if jobs:
            supervisor = ShardSupervisor(
                pool, policy, plan_keys=[plan_key], label="certify"
            )
            outcomes = supervisor.run(_certify_chunk_job, jobs, on_result=persist)
            fresh = {
                todo[i][0]["index"]: outcome
                for i, outcome in enumerate(outcomes)
                if outcome is not None
            }
        for config, chunk in tasks:
            if cert.violations_truncated:
                break
            index = config["index"]
            if index in fresh:
                report, snapshot = fresh[index]
                if parent.enabled:
                    merge_portable(parent, snapshot, worker=f"certify-{index}")
                fold(config, report)
            else:
                fold(config, checkpoint.report(index))


def _checkpoint_path(checkpoint_dir, name: str, switch) -> str | None:
    """One journal per certified instance: the (design, n, m) triple is
    in the filename for operators, the full options fingerprint is in
    the header for safety."""
    if checkpoint_dir is None:
        return None
    from pathlib import Path

    return str(
        Path(checkpoint_dir) / f"{name}-n{switch.n}-m{switch.m}.jsonl"
    )


def certify_design(
    name: str,
    params: dict,
    *,
    options: CertifyOptions | None = None,
    workers: int = 1,
    checkpoint_dir: str | None = None,
) -> Certificate:
    """Build a registered design and certify it."""
    from repro.switches.registry import build_switch

    switch = build_switch(name, **params)
    return certify_switch(
        switch,
        design=name,
        params=params,
        options=options,
        workers=workers,
        checkpoint=_checkpoint_path(checkpoint_dir, name, switch),
    )


def certify_registry(
    *,
    designs: list[str] | None = None,
    options: CertifyOptions | None = None,
    workers: int = 1,
    checkpoint_dir: str | None = None,
) -> list[Certificate]:
    """Certify every registered design at its declared certification
    configs (see :func:`repro.switches.registry.certify_configs`)."""
    from repro.switches.registry import certify_configs

    certificates = []
    for name, params in certify_configs(designs):
        certificates.append(
            certify_design(
                name,
                params,
                options=options,
                workers=workers,
                checkpoint_dir=checkpoint_dir,
            )
        )
    return certificates


def quick_options() -> CertifyOptions:
    """A cheap profile for tests and smoke runs: full enumeration only
    up to 2^12, small per-k budgets."""
    return replace(
        CertifyOptions(),
        max_total=1 << 12,
        max_per_k=64,
        scalar_rows=32,
        metamorphic_rows=8,
    )
