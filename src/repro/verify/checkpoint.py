"""Checkpoint/resume for long certification runs.

``certify --checkpoint DIR`` persists every completed chunk report —
the pure-data unit of work :func:`~repro.verify.exhaustive._examine_chunk`
produces — to an append-only JSONL journal as it folds.  A killed run
resumes by loading the journal, skipping finished chunks, and folding
the stored reports in their original chunk order, so the resumed
certificate is byte-identical to an uninterrupted run's: the task list
regenerates deterministically from the options, and a report's JSON
round trip is lossless (reports are built from ``int()``/``str`` data
precisely so they can cross process and now filesystem boundaries).

File format (``repro.verify/checkpoint@1``): a header line naming the
schema and the run fingerprint — a SHA-256 over the design, params,
switch dimensions, and every certify option — followed by one
``{"index": i, "report": {...}}`` line per completed chunk.  The
fingerprint is checked on resume: a checkpoint taken under different
options describes different chunks, so reusing it would silently
corrupt the certificate; that's a :class:`~repro.errors.ConfigurationError`.
A truncated trailing line (the run died mid-write) is discarded — that
chunk simply re-runs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path

from repro.errors import ConfigurationError

SCHEMA = "repro.verify/checkpoint@1"


def certify_fingerprint(design: str, params: dict, n: int, m: int, options) -> str:
    """The identity of one certification run: same fingerprint ⇔ same
    deterministic chunk sequence, so stored reports are interchangeable
    with fresh ones."""
    payload = {
        "design": design,
        "params": {str(k): params[k] for k in sorted(params or {})},
        "n": int(n),
        "m": int(m),
        "options": dataclasses.asdict(options),
    }
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


def _decode_report(report: dict) -> dict:
    """Undo the lossy bits of a JSON round trip: dict keys back to int,
    section/event tuples back to tuples (fold treats reports as opaque
    data, but tests compare them structurally)."""
    report = dict(report)
    report["k_counts"] = {int(k): int(v) for k, v in report["k_counts"].items()}
    report["sections"] = [
        (check, bool(cap), [(int(k), hexpat, msg) for k, hexpat, msg in events])
        for check, cap, events in report["sections"]
    ]
    return report


class CertifyCheckpoint:
    """One run's append-only chunk-report journal.

    ``record`` appends and flushes immediately — a SIGKILL between two
    chunks loses at most the in-flight chunk.  ``has``/``report`` serve
    the resume path.  Close explicitly (or via context manager); the
    file stays on disk for the operator to delete once the certificate
    is in hand.
    """

    def __init__(self, path: str | Path, fingerprint: str) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self._reports: dict[int, dict] = {}
        self._load()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not self._header_seen
        self._fh = open(self.path, "a", encoding="utf-8")
        if fresh:
            self._write_line({"schema": SCHEMA, "fingerprint": fingerprint})

    def _load(self) -> None:
        self._header_seen = False
        if not self.path.exists():
            return
        with open(self.path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    frame = json.loads(line)
                except json.JSONDecodeError:
                    # The previous run died mid-write; the partial
                    # record's chunk re-runs.
                    continue
                if not self._header_seen:
                    if frame.get("schema") != SCHEMA:
                        raise ConfigurationError(
                            f"{self.path} is not a {SCHEMA} checkpoint "
                            f"(schema: {frame.get('schema')!r})"
                        )
                    if frame.get("fingerprint") != self.fingerprint:
                        raise ConfigurationError(
                            f"checkpoint {self.path} was taken for a different "
                            "certification run (design/params/options changed); "
                            "delete it or point --checkpoint elsewhere"
                        )
                    self._header_seen = True
                    continue
                self._reports[int(frame["index"])] = _decode_report(frame["report"])

    def _write_line(self, frame: dict) -> None:
        self._fh.write(json.dumps(frame, separators=(",", ":")) + "\n")
        self._fh.flush()

    def has(self, index: int) -> bool:
        return index in self._reports

    def report(self, index: int) -> dict:
        return self._reports[index]

    def record(self, index: int, report: dict) -> None:
        if index in self._reports:
            return
        self._write_line({"index": int(index), "report": report})
        self._reports[index] = _decode_report(
            json.loads(json.dumps(report))
        )

    def completed_indices(self) -> list[int]:
        return sorted(self._reports)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> CertifyCheckpoint:
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = ["SCHEMA", "CertifyCheckpoint", "certify_fingerprint"]
