"""Metamorphic relations between setups of one switch.

These check *relations between runs* rather than absolute answers, so
they need no oracle and hold for every (n, m, α) design:

* **load permutation** — the routed count depends on the valid bits
  only through combinatorics: any permutation of a pattern with
  ``k ≤ αm`` valid bits still routes all k, and a congested pattern
  still routes at least ``⌊αm⌋`` (the contract, reached through a
  second independent input);
* **monotone growth** — turning one more input valid never decreases
  the routed count (adding a message cannot un-route others);
* **payload independence** — ``route()`` fills the same output slots
  whatever the message payloads are: routing is a function of the
  valid bits alone, and permuting or replacing the *invalid* entries
  (all ``None``) changes nothing.
"""

from __future__ import annotations

import numpy as np


def permuted_load_failure(switch, valid: np.ndarray, rng: np.random.Generator) -> str | None:
    """Check the load-permutation relation for one pattern; returns a
    message on failure, None when it holds."""
    valid = np.asarray(valid, dtype=bool)
    k = int(valid.sum())
    cap = switch.spec.guaranteed_capacity
    base = switch.setup(valid).routed_count
    shuffled = valid[rng.permutation(valid.size)]
    permuted = switch.setup(shuffled).routed_count
    if k <= cap and permuted != base:
        return (
            f"routed count changed under permutation at k={k} <= cap={cap}: "
            f"{base} -> {permuted}"
        )
    if k > cap and (base < cap or permuted < cap):
        return (
            f"congested routed count fell below cap={cap} "
            f"(original {base}, permuted {permuted})"
        )
    return None


def monotone_growth_failure(switch, valid: np.ndarray) -> str | None:
    """Adding one valid bit (at the first idle input) must not decrease
    the routed count."""
    valid = np.asarray(valid, dtype=bool)
    idle = np.flatnonzero(~valid)
    if idle.size == 0:
        return None
    before = switch.setup(valid).routed_count
    grown = valid.copy()
    grown[idle[0]] = True
    after = switch.setup(grown).routed_count
    if after < before:
        return (
            f"routed count decreased when input {int(idle[0])} became valid: "
            f"{before} -> {after}"
        )
    return None


def payload_independence_failure(switch, valid: np.ndarray) -> str | None:
    """``route()`` must fill the same output slots for any payloads."""
    valid = np.asarray(valid, dtype=bool)
    msgs_a: list[object | None] = [f"a{i}" if v else None for i, v in enumerate(valid)]
    msgs_b: list[object | None] = [i if v else None for i, v in enumerate(valid)]
    slots_a = [s is not None for s in switch.route(msgs_a)]
    slots_b = [s is not None for s in switch.route(msgs_b)]
    if slots_a != slots_b:
        return "route() filled different output slots for different payloads"
    return None


def metamorphic_failures(
    switch, valid: np.ndarray, rng: np.random.Generator
) -> list[str]:
    """Run every metamorphic relation on one pattern."""
    failures = []
    for check in (
        lambda: permuted_load_failure(switch, valid, rng),
        lambda: monotone_growth_failure(switch, valid),
        lambda: payload_independence_failure(switch, valid),
    ):
        message = check()
        if message is not None:
            failures.append(message)
    return failures
