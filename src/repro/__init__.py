"""repro — reproduction of Cormen's *Efficient Multichip Partial
Concentrator Switches* (MIT LCS TM-322, February 1987).

Public API
----------
Theory (Section 3):
    :func:`~repro.core.nearsort.nearsortedness`,
    :func:`~repro.core.nearsort.decompose_dirty_window`,
    :class:`~repro.core.concentration.ConcentratorSpec`,
    :func:`~repro.core.concentration.lemma2_spec`.

Switches (Sections 1, 4, 5, 6):
    :class:`~repro.switches.Hyperconcentrator`,
    :class:`~repro.switches.PerfectConcentrator`,
    :class:`~repro.switches.RevsortSwitch`,
    :class:`~repro.switches.ColumnsortSwitch`,
    :class:`~repro.switches.FullRevsortHyperconcentrator`,
    :class:`~repro.switches.FullColumnsortHyperconcentrator`,
    :class:`~repro.gates.GateHyperconcentrator`.

Substrates:
    :mod:`repro.mesh` (Revsort/Columnsort/Shearsort),
    :mod:`repro.gates` (netlists), :mod:`repro.hardware` (costs and
    packagings), :mod:`repro.messages` (bit-serial simulation),
    :mod:`repro.network` (traffic and network simulation).

Quickstart
----------
>>> import numpy as np
>>> from repro import RevsortSwitch
>>> switch = RevsortSwitch(n=256, m=192)
>>> valid = np.zeros(256, dtype=bool); valid[:100] = True
>>> routing = switch.setup(valid)
>>> routing.routed_count
100
"""

import logging as _logging

# Standard library-package practice: never configure the root logger
# from library code; attach a NullHandler so "repro.*" loggers are safe
# to use before (or without) any application logging setup.  The CLI
# installs a real handler driven by --log-level / $REPRO_LOG.
_logging.getLogger("repro").addHandler(_logging.NullHandler())

from repro import obs
from repro.core.concentration import (
    ConcentratorSpec,
    lemma2_load_ratio,
    lemma2_spec,
    validate_hyperconcentration,
    validate_partial_concentration,
    validate_perfect_concentration,
)
from repro.core.nearsort import (
    decompose_dirty_window,
    is_nearsorted,
    nearsortedness,
)
from repro.gates import GateHyperconcentrator
from repro.messages import BitSerialSimulator, Message
from repro.switches import (
    ColumnsortSwitch,
    ConcentratorSwitch,
    FullColumnsortHyperconcentrator,
    FullRevsortHyperconcentrator,
    Hyperconcentrator,
    IteratedColumnsortSwitch,
    PerfectConcentrator,
    PrefixButterflyHyperconcentrator,
    RevsortSwitch,
    Routing,
)

__version__ = "1.0.0"

__all__ = [
    "BitSerialSimulator",
    "obs",
    "ColumnsortSwitch",
    "ConcentratorSpec",
    "ConcentratorSwitch",
    "FullColumnsortHyperconcentrator",
    "FullRevsortHyperconcentrator",
    "GateHyperconcentrator",
    "Hyperconcentrator",
    "IteratedColumnsortSwitch",
    "Message",
    "PerfectConcentrator",
    "PrefixButterflyHyperconcentrator",
    "RevsortSwitch",
    "Routing",
    "decompose_dirty_window",
    "is_nearsorted",
    "lemma2_load_ratio",
    "lemma2_spec",
    "nearsortedness",
    "validate_hyperconcentration",
    "validate_partial_concentration",
    "validate_perfect_concentration",
    "__version__",
]
