"""Cycle-accurate bit-serial transit through a concentrator switch.

Models Section 2's timing exactly:

* **cycle 0 (setup)** — every input wire presents its valid bit; the
  switch's combinational logic establishes the routing paths.  An
  external control line signals this cycle.
* **cycles 1..L** — payload bits enter the input wires and emerge on
  the output wires of their established paths the same cycle (the
  switch is combinational; the clock period must exceed its critical
  path, see :meth:`BitSerialSimulator.min_clock_period`).

The simulator streams actual bit matrices cycle by cycle rather than
copying payloads wholesale, so tests can assert per-cycle wire states.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import SimulationError
from repro.messages.message import Message
from repro.switches.base import ConcentratorSwitch, Routing


@dataclass(frozen=True)
class TransitRecord:
    """Result of one message set's transit through a switch."""

    routing: Routing
    delivered: dict[int, Message]  # output wire -> message
    dropped: list[Message]
    cycles: int
    wire_trace: np.ndarray  # (cycles+1, m) bits observed on outputs


class BitSerialSimulator:
    """Drives bit-serial message sets through one switch."""

    def __init__(self, switch: ConcentratorSwitch):
        self.switch = switch

    def min_clock_period(self, delay_per_gate: float = 1.0) -> float:
        """Smallest clock period (in gate-delay units) at which the
        combinational paths settle within a cycle."""
        delays = getattr(self.switch, "gate_delays", None)
        if delays is None:
            raise SimulationError(
                f"{type(self.switch).__name__} exposes no gate-delay model"
            )
        return delays * delay_per_gate

    def transit(self, messages: list[Message | None]) -> TransitRecord:
        """Send one aligned message set through the switch.

        ``messages[i]`` enters input wire i (None = idle wire).  All
        payloads must have equal length (the bit streams are aligned in
        time).  Returns the delivered map, drops, and the per-cycle
        output wire trace.
        """
        n, m = self.switch.n, self.switch.m
        if len(messages) != n:
            raise SimulationError(f"expected {n} input streams, got {len(messages)}")
        lengths = {msg.length for msg in messages if msg is not None}
        if len(lengths) > 1:
            raise SimulationError(f"misaligned payload lengths: {sorted(lengths)}")
        length = lengths.pop() if lengths else 0

        with obs.span("serial.transit", inputs=n, payload_bits=length):
            record = self._transit(messages, n, m, length)
        reg = obs.get_registry()
        if reg.enabled:
            reg.counter("serial.transits").inc()
            reg.counter("serial.cycles").inc(record.cycles)
            reg.histogram("serial.transit_cycles").observe(record.cycles)
        return record

    def _transit(
        self, messages: list[Message | None], n: int, m: int, length: int
    ) -> TransitRecord:

        # Cycle 0: setup.
        valid = np.array([msg is not None for msg in messages], dtype=bool)
        routing = self.switch.setup(valid)

        # Input bit matrix: row per cycle (setup row first).
        in_bits = np.zeros((length + 1, n), dtype=np.int8)
        in_bits[0] = valid.astype(np.int8)
        for i, msg in enumerate(messages):
            if msg is not None:
                in_bits[1:, i] = msg.payload

        # Stream through the established paths cycle by cycle.
        out_bits = np.zeros((length + 1, m), dtype=np.int8)
        routed = routing.input_to_output
        senders = np.flatnonzero(routed >= 0)
        targets = routed[senders]
        for cycle in range(length + 1):
            out_bits[cycle, targets] = in_bits[cycle, senders]

        # Reassemble messages at the outputs and check integrity.
        delivered: dict[int, Message] = {}
        dropped: list[Message] = []
        for i, msg in enumerate(messages):
            if msg is None:
                continue
            target = int(routed[i])
            if target < 0:
                dropped.append(msg)
                continue
            received = tuple(int(b) for b in out_bits[1:, target])
            if received != msg.payload:
                raise SimulationError(
                    f"payload corrupted in transit on output {target}"
                )
            delivered[target] = msg
        return TransitRecord(
            routing=routing,
            delivered=delivered,
            dropped=dropped,
            cycles=length + 1,
            wire_trace=out_bits,
        )
