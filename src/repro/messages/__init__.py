"""Bit-serial message format and clocked simulation (Section 2).

Messages arrive one bit per clock cycle; the first bit at each input
wire is the *valid bit*, presented during the externally signalled
**setup** cycle.  Bits on later cycles follow the electrical paths the
valid bits established.  Unsuccessfully routed messages are handled by
a congestion policy: buffer, misroute-free drop, or drop-with-resend
(Section 1 lists these as the typical options; the switch designs are
compatible with any of them).
"""

from repro.messages.congestion import (
    BufferPolicy,
    CongestionPolicy,
    DropPolicy,
    ResendPolicy,
)
from repro.messages.message import Message
from repro.messages.serial_sim import BitSerialSimulator, TransitRecord

__all__ = [
    "BitSerialSimulator",
    "BufferPolicy",
    "CongestionPolicy",
    "DropPolicy",
    "Message",
    "ResendPolicy",
    "TransitRecord",
]
