"""Pipelined message waves.

Section 2's protocol sends one *wave* of messages per setup: valid
bits on the setup cycle, then L payload cycles.  A routing network
keeps the switch busy by launching a new wave every ``L + 1`` cycles.
:class:`WavePipeline` models that steady state on a single switch:
per-wave setup, per-cycle streaming, inter-wave congestion handling via
a policy, and wall-clock accounting in both cycles and gate-delay time
(cycle period × critical path).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.errors import ConfigurationError, SimulationError
from repro.messages.congestion import CongestionPolicy, DropPolicy
from repro.messages.message import Message
from repro.messages.serial_sim import BitSerialSimulator
from repro.switches.base import ConcentratorSwitch


@dataclass
class WaveRecord:
    """Outcome of one wave."""

    wave_index: int
    start_cycle: int
    injected: int
    delivered: int
    unrouted: int


@dataclass
class PipelineSummary:
    """Aggregate over a pipelined run."""

    waves: list[WaveRecord] = field(default_factory=list)
    total_cycles: int = 0
    payload_bits_delivered: int = 0

    @property
    def delivered(self) -> int:
        return sum(w.delivered for w in self.waves)

    @property
    def injected(self) -> int:
        return sum(w.injected for w in self.waves)

    def throughput(self) -> float:
        """Messages delivered per cycle."""
        return self.delivered / self.total_cycles if self.total_cycles else 0.0


class WavePipeline:
    """Drive back-to-back message waves through one switch."""

    def __init__(
        self,
        switch: ConcentratorSwitch,
        payload_bits: int,
        policy: CongestionPolicy | None = None,
        seed: int | None = None,
    ):
        if payload_bits < 0:
            raise ConfigurationError("payload_bits must be non-negative")
        self.switch = switch
        self.payload_bits = payload_bits
        self.policy = policy if policy is not None else DropPolicy()
        self.sim = BitSerialSimulator(switch)
        from repro._util.rng import default_rng

        self.rng = default_rng(seed)

    @property
    def cycles_per_wave(self) -> int:
        """Setup cycle + payload cycles."""
        return self.payload_bits + 1

    def wall_time(self, waves: int, delay_per_gate: float = 1.0) -> float:
        """Total time for ``waves`` waves: cycles × minimum clock
        period (the switch's critical path)."""
        return waves * self.cycles_per_wave * self.sim.min_clock_period(delay_per_gate)

    def run(self, traffic, waves: int) -> PipelineSummary:
        """Run ``waves`` waves of ``traffic`` (a TrafficGenerator)."""
        if traffic.n != self.switch.n:
            raise SimulationError(
                f"traffic width {traffic.n} != switch inputs {self.switch.n}"
            )
        if traffic.payload_bits != self.payload_bits:
            raise SimulationError(
                "traffic payload width must match the pipeline's"
            )
        summary = PipelineSummary()
        for wave_index in range(waves):
            fresh = traffic.next_round()
            offered = sum(1 for msg in fresh if msg is not None)
            self.policy.on_offered(offered)

            if hasattr(self.policy, "backlog_due"):
                backlog = self.policy.backlog_due(wave_index)
            else:
                backlog = self.policy.backlog()
            injected = list(fresh)
            overflow: list[Message] = []
            if backlog:
                idle = [i for i, msg in enumerate(injected) if msg is None]
                self.rng.shuffle(idle)
                for msg, slot in zip(backlog, idle):
                    injected[slot] = msg
                overflow = backlog[len(idle):]

            record = self.sim.transit(injected)
            unrouted = record.dropped + overflow
            self.policy.on_delivered(len(record.delivered))
            self.policy.on_unrouted(unrouted, wave_index)

            summary.waves.append(
                WaveRecord(
                    wave_index=wave_index,
                    start_cycle=wave_index * self.cycles_per_wave,
                    injected=sum(1 for msg in injected if msg is not None),
                    delivered=len(record.delivered),
                    unrouted=len(unrouted),
                )
            )
            summary.payload_bits_delivered += len(record.delivered) * self.payload_bits
            obs.counter("pipeline.waves").inc()
        summary.total_cycles = waves * self.cycles_per_wave
        return summary
