"""The bit-serial message format of Section 2.

"Each message is formed by a stream of bits arriving at a wire at the
rate of one bit per clock cycle.  The first bit of each message that
arrives at an input wire is the valid bit."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

import numpy as np

from repro.errors import ConfigurationError

_serial = count()


@dataclass(frozen=True)
class Message:
    """One bit-serial message.

    ``payload`` is the bit stream that follows the valid bit.  An
    *invalid* message (valid bit 0) is represented by ``None`` at the
    switch interfaces rather than by a Message object; every Message is
    a valid message.  ``tag`` identifies the message across hops for
    the network simulations (auto-assigned when omitted).
    """

    payload: tuple[int, ...]
    tag: int = field(default_factory=lambda: next(_serial))

    def __post_init__(self) -> None:
        if any(bit not in (0, 1) for bit in self.payload):
            raise ConfigurationError("payload must contain only 0/1 bits")

    @classmethod
    def from_int(cls, value: int, width: int, tag: int | None = None) -> "Message":
        """Encode an integer little-endian into a ``width``-bit payload."""
        if value < 0 or value >= (1 << width):
            raise ConfigurationError(f"{value} does not fit in {width} bits")
        bits = tuple((value >> i) & 1 for i in range(width))
        return cls(payload=bits) if tag is None else cls(payload=bits, tag=tag)

    def to_int(self) -> int:
        """Decode the little-endian payload back to an integer."""
        return sum(bit << i for i, bit in enumerate(self.payload))

    @property
    def length(self) -> int:
        """Payload bits (excluding the valid bit)."""
        return len(self.payload)

    def wire_stream(self) -> np.ndarray:
        """The full bit stream as seen on a wire: valid bit 1, then the
        payload bits."""
        return np.array((1,) + self.payload, dtype=np.int8)


def invalid_wire_stream(length: int) -> np.ndarray:
    """The stream an idle wire presents: valid bit 0 then don't-care
    (zero) filler for ``length`` cycles."""
    return np.zeros(length + 1, dtype=np.int8)
