"""Congestion-control policies (Section 1).

"Typical ways of handling unsuccessfully routed messages in a routing
network are to buffer them, to misroute them, or to simply drop them
and rely on a higher-level acknowledgment protocol to detect this
situation and resend them.  The switch designs in this paper are
compatible with any of these congestion control methods."

A policy consumes the messages a switch failed to route in one round
and decides what re-enters on later rounds.  The network simulator
drives rounds; policies keep their own state.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass

from repro import obs
from repro._util.rng import default_rng
from repro.errors import ConfigurationError
from repro.messages.message import Message


@dataclass
class PolicyStats:
    """Counters every policy maintains.

    ``expired`` is a sub-count of ``dropped``: messages whose TTL ran
    out (so ``dropped`` already includes them).
    """

    offered: int = 0
    delivered: int = 0
    dropped: int = 0
    retried: int = 0
    expired: int = 0

    @property
    def loss_rate(self) -> float:
        return self.dropped / self.offered if self.offered else 0.0


class CongestionPolicy(ABC):
    """Decides the fate of unrouted messages between rounds."""

    def __init__(self) -> None:
        self.stats = PolicyStats()

    def _count_dropped(self, amount: int = 1) -> None:
        """Record permanent losses (stats + the obs layer)."""
        self.stats.dropped += amount
        if amount:
            obs.counter("congestion.dropped", policy=type(self).__name__).inc(amount)

    def _count_retried(self, amount: int = 1) -> None:
        """Record messages queued for a later round."""
        self.stats.retried += amount
        if amount:
            obs.counter("congestion.retried", policy=type(self).__name__).inc(amount)

    def _count_expired(self, amount: int = 1) -> None:
        """Record TTL expiries (a kind of permanent loss)."""
        self.stats.dropped += amount
        self.stats.expired += amount
        if amount:
            name = type(self).__name__
            obs.counter("congestion.dropped", policy=name).inc(amount)
            obs.counter("congestion.expired", policy=name).inc(amount)

    @abstractmethod
    def on_unrouted(self, messages: list[Message], round_index: int) -> None:
        """Called with the messages the switch failed to route."""

    @abstractmethod
    def backlog(self) -> list[Message]:
        """Messages this policy wants re-injected next round."""

    def on_offered(self, count: int) -> None:
        self.stats.offered += count

    def on_delivered(self, count: int) -> None:
        self.stats.delivered += count


class DropPolicy(CongestionPolicy):
    """Drop unrouted messages outright (loss is permanent)."""

    def on_unrouted(self, messages: list[Message], round_index: int) -> None:
        self._count_dropped(len(messages))

    def backlog(self) -> list[Message]:
        return []


class BufferPolicy(CongestionPolicy):
    """Buffer unrouted messages at the inputs and retry next round.

    ``capacity`` bounds the queue; overflow is dropped (queue-overflow
    is exactly the scenario the paper's BTR section handles with its
    emergency network).
    """

    def __init__(self, capacity: int | None = None):
        super().__init__()
        self.capacity = capacity
        self._queue: deque[Message] = deque()
        #: queue depth sampled at the end of every round with losses —
        #: by Little's law, mean depth / throughput approximates the
        #: mean extra waiting time buffering introduces.
        self.depth_history: list[int] = []

    def on_unrouted(self, messages: list[Message], round_index: int) -> None:
        for msg in messages:
            if self.capacity is not None and len(self._queue) >= self.capacity:
                self._count_dropped()
            else:
                self._queue.append(msg)
                self._count_retried()
        self.depth_history.append(len(self._queue))
        obs.series("congestion.queue_depth", policy=type(self).__name__).append(
            len(self._queue), t=round_index
        )

    def backlog(self) -> list[Message]:
        out = list(self._queue)
        self._queue.clear()
        return out

    @property
    def mean_queue_depth(self) -> float:
        if not self.depth_history:
            return 0.0
        return sum(self.depth_history) / len(self.depth_history)

    @property
    def peak_queue_depth(self) -> int:
        return max(self.depth_history, default=0)


@dataclass
class _Pending:
    message: Message
    resend_round: int


class ResendPolicy(CongestionPolicy):
    """Drop-and-resend: the sender detects a missing acknowledgment
    after ``ack_timeout`` rounds and retransmits, up to ``max_retries``
    per message (then the message is declared lost)."""

    def __init__(self, ack_timeout: int = 1, max_retries: int = 8):
        super().__init__()
        self.ack_timeout = ack_timeout
        self.max_retries = max_retries
        self._pending: list[_Pending] = []
        self._attempts: dict[int, int] = {}

    def on_unrouted(self, messages: list[Message], round_index: int) -> None:
        for msg in messages:
            attempts = self._attempts.get(msg.tag, 0) + 1
            self._attempts[msg.tag] = attempts
            if attempts > self.max_retries:
                self._count_dropped()
            else:
                self._pending.append(
                    _Pending(message=msg, resend_round=round_index + self.ack_timeout)
                )
                self._count_retried()

    def backlog(self) -> list[Message]:
        # Called at the start of a round; release everything due.  The
        # network simulator passes the round index via ``due_round``.
        ready = [p.message for p in self._pending]
        self._pending.clear()
        return ready

    def backlog_due(self, round_index: int) -> list[Message]:
        """Release only the retransmissions whose timeout has expired."""
        due = [p.message for p in self._pending if p.resend_round <= round_index]
        self._pending = [p for p in self._pending if p.resend_round > round_index]
        return due


class RetryPolicy(CongestionPolicy):
    """Retry with exponential backoff, jitter, and a per-message TTL.

    An unrouted message waits ``base_delay · backoff_factor^(a−1)``
    rounds on its a-th failure (capped at ``max_delay``), plus a
    uniform integer jitter in ``[0, jitter]`` to de-synchronise
    colliding retries, then re-enters on an idle input slot.  A message
    is permanently dropped once it exceeds ``max_retries`` attempts or
    ages past ``ttl`` rounds since its first failure (TTL drops are
    additionally counted in ``stats.expired``).  This is the resilient
    companion to the fault scenarios: flaky pins and degraded switches
    turn one-shot losses into recoverable retries.
    """

    def __init__(
        self,
        max_retries: int = 8,
        base_delay: int = 1,
        backoff_factor: float = 2.0,
        max_delay: int = 16,
        jitter: int = 1,
        ttl: int | None = None,
        seed: int | None = None,
    ):
        super().__init__()
        if max_retries < 0 or base_delay < 1 or max_delay < base_delay:
            raise ConfigurationError(
                "need max_retries >= 0 and 1 <= base_delay <= max_delay"
            )
        if backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")
        if jitter < 0:
            raise ConfigurationError("jitter must be non-negative")
        if ttl is not None and ttl < 1:
            raise ConfigurationError("ttl must be positive (or None)")
        self.max_retries = max_retries
        self.base_delay = base_delay
        self.backoff_factor = backoff_factor
        self.max_delay = max_delay
        self.jitter = jitter
        self.ttl = ttl
        self._rng = default_rng(seed)
        self._pending: list[_Pending] = []
        self._attempts: dict[int, int] = {}
        self._first_failure: dict[int, int] = {}

    def delay_for(self, attempts: int) -> int:
        """Backoff delay (without jitter) before retry ``attempts``."""
        delay = self.base_delay * self.backoff_factor ** (attempts - 1)
        return max(1, min(int(round(delay)), self.max_delay))

    def on_unrouted(self, messages: list[Message], round_index: int) -> None:
        for msg in messages:
            attempts = self._attempts.get(msg.tag, 0) + 1
            self._attempts[msg.tag] = attempts
            first = self._first_failure.setdefault(msg.tag, round_index)
            if self.ttl is not None and round_index - first >= self.ttl:
                self._count_expired()
                continue
            if attempts > self.max_retries:
                self._count_dropped()
                continue
            wait = self.delay_for(attempts)
            if self.jitter:
                wait += int(self._rng.integers(0, self.jitter + 1))
            self._pending.append(
                _Pending(message=msg, resend_round=round_index + wait)
            )
            self._count_retried()
        obs.series("congestion.inflight", policy=type(self).__name__).append(
            len(self._pending), t=round_index
        )

    def backlog(self) -> list[Message]:
        ready = [p.message for p in self._pending]
        self._pending.clear()
        return ready

    def backlog_due(self, round_index: int) -> list[Message]:
        """Release the retries whose backoff window has elapsed."""
        due = [p.message for p in self._pending if p.resend_round <= round_index]
        self._pending = [p for p in self._pending if p.resend_round > round_index]
        return due

    @property
    def in_flight(self) -> int:
        """Messages currently waiting out a backoff window."""
        return len(self._pending)
