"""Public test helpers for downstream users.

A project embedding these switches (or implementing new concentrator
designs against :class:`~repro.switches.base.ConcentratorSwitch`) can
verify its implementation with one call::

    from repro.testing import check_concentrator
    report = check_concentrator(my_switch, trials=200, seed=0)
    assert report.ok, report.failures

The checker exercises the behavioural contract (disjoint paths, no
ghost routes, the (n, m, α) guarantees at and beyond capacity),
determinism, and — when the switch exposes ``final_positions`` and
``epsilon_bound`` — the measured nearsortedness against the claimed
bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util.rng import default_rng
from repro.core.concentration import validate_partial_concentration
from repro.core.nearsort import nearsortedness
from repro.errors import ReproError
from repro.switches.base import ConcentratorSwitch


@dataclass
class ContractReport:
    """Result of :func:`check_concentrator`."""

    switch: str
    trials: int
    failures: list[str] = field(default_factory=list)
    worst_epsilon: int | None = None
    epsilon_bound: int | None = None
    #: Trials actually executed (< ``trials`` when ``max_failures``
    #: aborted the loop early).
    completed_trials: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures


def random_valid_bits(
    n: int, k: int | None = None, *, p: float = 0.5, seed: int | None = None
) -> np.ndarray:
    """Random valid-bit vector (exactly ``k`` valid when given)."""
    from repro._util.rng import random_valid_bits as _impl

    return _impl(n, k, p=p, rng=default_rng(seed))


def adversarial_valid_bits(switch: ConcentratorSwitch, seed: int | None = None) -> np.ndarray:
    """A worst-case-ish pattern for ``switch`` found by hill climbing
    on the routing-failure count (falls back to a random overload when
    the switch has no slack to exploit)."""
    from repro.analysis.adversarial import drop_objective, hill_climb

    result = hill_climb(
        switch.n, drop_objective(switch), iterations=200, restarts=3, seed=seed
    )
    return result.best_input


def check_concentrator(
    switch: ConcentratorSwitch,
    *,
    trials: int = 100,
    seed: int | None = None,
    max_failures: int | None = None,
) -> ContractReport:
    """Exercise a switch's full behavioural contract.

    Checks per random pattern: the (n, m, α) contract (via the library
    validators), determinism of setup, and input immutability.  If the
    switch exposes ``final_positions``/``epsilon_bound``, the measured
    ε is compared against the bound.  Returns a report rather than
    raising, so callers can aggregate.

    Every failure message carries the trial's own seed and the exact
    valid-bit pattern (``pattern_hex`` encoding), so one bad trial can
    be replayed in isolation.  ``max_failures`` aborts the loop once
    that many failures accumulate; ``worst_epsilon`` still reflects
    every trial measured up to the abort.
    """
    from repro.verify.patterns import pattern_hex

    rng = default_rng(seed)
    report = ContractReport(switch=repr(switch), trials=trials)
    spec = switch.spec
    has_nearsort = hasattr(switch, "final_positions") and hasattr(
        switch, "epsilon_bound"
    )
    worst_eps = 0

    for trial in range(trials):
        # Mix load regimes: light, capacity, overload, uniform random.
        # Each trial owns one seed so its pattern is reproducible from
        # the failure message alone.
        trial_seed = int(rng.integers(1 << 31))
        kind = trial % 4
        if kind == 0:
            valid = random_valid_bits(switch.n, p=float(rng.random()), seed=trial_seed)
        elif kind == 1 and spec.guaranteed_capacity > 0:
            valid = random_valid_bits(
                switch.n, k=spec.guaranteed_capacity, seed=trial_seed
            )
        elif kind == 2:
            valid = np.ones(switch.n, dtype=bool)
        else:
            valid = random_valid_bits(switch.n, p=0.9, seed=trial_seed)
        where = f"trial {trial} (seed {trial_seed}, pattern {pattern_hex(valid)})"

        report.completed_trials = trial + 1
        before = valid.copy()
        try:
            routing = switch.setup(valid)
        except ReproError as exc:
            report.failures.append(f"{where}: setup raised {exc!r}")
            routing = None
        if routing is not None:
            if not np.array_equal(valid, before):
                report.failures.append(f"{where}: setup mutated its input")
            try:
                validate_partial_concentration(spec, valid, routing.input_to_output)
            except ReproError as exc:
                report.failures.append(f"{where}: contract violation: {exc}")

            again = switch.setup(valid)
            if not np.array_equal(routing.input_to_output, again.input_to_output):
                report.failures.append(f"{where}: setup is nondeterministic")

            if has_nearsort:
                final = switch.final_positions(valid)
                out = np.zeros(switch.n, dtype=np.int8)
                out[final] = valid.astype(np.int8)
                worst_eps = max(worst_eps, nearsortedness(out))

        if max_failures is not None and len(report.failures) >= max_failures:
            break

    if has_nearsort:
        # Reported even after an early abort: partial ε evidence beats
        # a None that hides how close the measured runs already came.
        report.worst_epsilon = worst_eps
        report.epsilon_bound = int(switch.epsilon_bound)
        if worst_eps > switch.epsilon_bound:
            report.failures.append(
                f"measured epsilon {worst_eps} exceeds bound {switch.epsilon_bound}"
            )
    return report
