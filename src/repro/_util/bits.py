"""Small integer/bit helpers used throughout the switch constructions.

The paper writes ``lg n`` for the base-2 logarithm and ``rev(i)`` for the
q-bit reversal of ``i`` (Section 4); these are the canonical
implementations used by every module.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def is_pow2(x: int) -> bool:
    """Return True iff ``x`` is a positive power of two."""
    return x > 0 and (x & (x - 1)) == 0


def ilg(x: int) -> int:
    """Exact integer base-2 logarithm of a power of two.

    Raises :class:`ConfigurationError` if ``x`` is not a power of two;
    the switch constructions require exact powers.
    """
    if not is_pow2(x):
        raise ConfigurationError(f"expected a power of two, got {x}")
    return x.bit_length() - 1


def ceil_lg(x: int) -> int:
    """``⌈lg x⌉`` for positive ``x`` (0 for x == 1)."""
    if x <= 0:
        raise ConfigurationError(f"ceil_lg requires a positive integer, got {x}")
    return (x - 1).bit_length()


def ceil_div(a: int, b: int) -> int:
    """``⌈a / b⌉`` for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ConfigurationError(f"ceil_div requires a positive divisor, got {b}")
    return -(-a // b)


def bit_reverse(i: int, q: int) -> int:
    """The paper's ``rev(i)``: reverse the ``q``-bit binary representation.

    Leading zeros are included in the reversal, e.g. with q = 4,
    ``rev(3) = rev(0011b) = 1100b = 12`` (the Section 4 example).
    """
    if q < 0:
        raise ConfigurationError(f"bit width must be non-negative, got {q}")
    if not 0 <= i < (1 << q):
        raise ConfigurationError(f"value {i} does not fit in {q} bits")
    out = 0
    for _ in range(q):
        out = (out << 1) | (i & 1)
        i >>= 1
    return out


def lg_star(x: int) -> int:
    """The iterated logarithm ``lg* x``: the number of times ``lg`` must
    be applied before the value drops to at most 2.

    Not needed by the concentrator constructions themselves but used by
    the analysis helpers when reporting asymptotics.
    """
    if x <= 0:
        raise ConfigurationError(f"lg_star requires a positive integer, got {x}")
    count = 0
    value = float(x)
    while value > 2.0:
        import math

        value = math.log2(value)
        count += 1
    return count
