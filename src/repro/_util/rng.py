"""Deterministic random-number helpers.

Every randomized experiment in tests/benchmarks goes through
:func:`default_rng` so runs are reproducible from an explicit seed.
"""

from __future__ import annotations

import numpy as np

#: Seed used when none is supplied; chosen once and fixed for the repo.
DEFAULT_SEED = 0x1987


def default_rng(seed: int | None = None) -> np.random.Generator:
    """Return a numpy Generator seeded deterministically.

    ``seed=None`` maps to the repo-wide :data:`DEFAULT_SEED` (rather than
    OS entropy) so that *all* library-internal randomness is repeatable.
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def random_valid_bits(
    n: int, k: int | None = None, *, p: float = 0.5, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Random boolean valid-bit vector of length ``n``.

    If ``k`` is given, exactly ``k`` positions are valid (uniformly
    chosen); otherwise each position is valid independently with
    probability ``p``.
    """
    gen = rng if rng is not None else default_rng()
    out = np.zeros(n, dtype=bool)
    if k is not None:
        if not 0 <= k <= n:
            raise ValueError(f"k={k} out of range for n={n}")
        out[gen.choice(n, size=k, replace=False)] = True
    else:
        out[:] = gen.random(n) < p
    return out
