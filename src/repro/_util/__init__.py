"""Internal utilities: bit manipulation and deterministic RNG helpers."""

from repro._util.bits import (
    bit_reverse,
    ceil_div,
    ceil_lg,
    ilg,
    is_pow2,
    lg_star,
)
from repro._util.rng import default_rng

__all__ = [
    "bit_reverse",
    "ceil_div",
    "ceil_lg",
    "default_rng",
    "ilg",
    "is_pow2",
    "lg_star",
]
