"""Fault scenarios: declarative hardware-failure models for switches.

The paper's multichip designs trade one huge die for ``Θ(√n)`` or
``Θ(n^{1−β})`` smaller chips — and :mod:`repro.hardware.reliability`
prices exactly how much more often a many-chip system fails in the
field.  This module gives those failures a concrete, injectable form:

* :class:`StuckAtFault` — an *input pin* whose valid bit reads a
  constant 0 or 1 regardless of what the sender drives;
* :class:`SeveredWireFault` — an inter-chip wire cut at a stage
  boundary: whatever message sits on that flat position after the
  stage's chips concentrate never arrives downstream;
* :class:`DeadChipFault` — a whole hyperconcentrator chip dark: every
  one of its output wires behaves as severed;
* :class:`DeadOutputFault` — an output pad of the switch that can no
  longer be read (recoverable by remapping onto spare wires, see
  :class:`repro.faults.injector.FaultySwitch`);
* :class:`FlakyPinFault` — an intermittent input pin that flips its
  valid bit with per-round Bernoulli probability ``p`` (consumed by
  :class:`repro.network.simulate.SwitchSimulation`).

A :class:`FaultScenario` bundles faults; :func:`compile_scenario`
validates it against a concrete switch and lowers it to the mask form
the three execution paths share (input masks, per-chip-layer kill
masks, dead-output masks).  Interior faults (severed wires, dead
chips) are *kill-type* only: a mid-flight wire stuck high would
fabricate a phantom message with no input behind it, which no
input→output routing can represent, so stuck-at-1 is modelled at input
pins only (see ``docs/robustness.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

import numpy as np

from repro.engine.plan import ChipLayer, StagePlan
from repro.errors import FaultInjectionError


@dataclass(frozen=True)
class StuckAtFault:
    """Input pin ``position`` reads a constant ``value`` (0 or 1)."""

    position: int
    value: int

    def describe(self) -> str:
        return f"stuck-at-{self.value} input pin {self.position}"


@dataclass(frozen=True)
class SeveredWireFault:
    """The wire leaving flat position ``position`` at the boundary
    after chip layer ``stage`` is cut: the signal downstream reads
    invalid."""

    stage: int
    position: int

    def describe(self) -> str:
        return f"severed wire at stage {self.stage} position {self.position}"


@dataclass(frozen=True)
class DeadChipFault:
    """Chip ``chip`` of chip layer ``stage`` is dark: all of its
    output wires behave as severed."""

    stage: int
    chip: int

    def describe(self) -> str:
        return f"dead chip {self.chip} in stage {self.stage}"


@dataclass(frozen=True)
class DeadOutputFault:
    """Output pad ``output`` (< m) can no longer be read."""

    output: int

    def describe(self) -> str:
        return f"dead output pad {self.output}"


@dataclass(frozen=True)
class FlakyPinFault:
    """Input pin ``position`` flips its valid bit with probability
    ``p`` each round (intermittent contact)."""

    position: int
    p: float

    def describe(self) -> str:
        return f"flaky input pin {self.position} (p={self.p:g})"


Fault = Union[
    StuckAtFault, SeveredWireFault, DeadChipFault, DeadOutputFault, FlakyPinFault
]

#: Interior faults need a compiled stage plan to locate their wires.
INTERIOR_KINDS = (SeveredWireFault, DeadChipFault)


@dataclass(frozen=True)
class FaultScenario:
    """A named, reproducible set of simultaneous hardware faults."""

    name: str
    faults: tuple = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    @property
    def fault_count(self) -> int:
        return len(self.faults)

    def describe(self) -> list[str]:
        return [f.describe() for f in self.faults]

    def with_fault(self, fault: Fault, name: str | None = None) -> "FaultScenario":
        """A new scenario extending this one (used to grow chains)."""
        return FaultScenario(
            name=name or f"{self.name}+1",
            faults=self.faults + (fault,),
            seed=self.seed,
        )

    def structural(self) -> "FaultScenario":
        """The scenario without its flaky pins (the per-round Bernoulli
        faults live in the simulator, not the routing paths)."""
        kept = tuple(f for f in self.faults if not isinstance(f, FlakyPinFault))
        return FaultScenario(name=self.name, faults=kept, seed=self.seed)

    def flaky_pins(self) -> list[tuple[int, float]]:
        return [
            (f.position, f.p) for f in self.faults if isinstance(f, FlakyPinFault)
        ]

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "faults": [fault_to_dict(f) for f in self.faults],
        }


def fault_to_dict(fault: Fault) -> dict:
    kind = {
        StuckAtFault: "stuck_at",
        SeveredWireFault: "severed_wire",
        DeadChipFault: "dead_chip",
        DeadOutputFault: "dead_output",
        FlakyPinFault: "flaky_pin",
    }[type(fault)]
    out = {"kind": kind}
    out.update(vars(fault))
    return out


def plan_of(switch) -> StagePlan | None:
    """The switch's compiled stage plan, or None when the design has no
    plan (or an instance-level override made the shared plan stale,
    e.g. the fault-ablation subclasses in the validator test suite)."""
    if getattr(switch, "_rotate_perm_cache", None) is not None:
        return None
    plan = getattr(switch, "_plan", None)
    return plan if isinstance(plan, StagePlan) else None


def chip_layers(plan: StagePlan) -> list[ChipLayer]:
    """The plan's chip layers in op order (stage ordinal = list index,
    matching the netlist's ``s{stage}c{chip}yv{wire}`` naming)."""
    return [op for op in plan.ops if isinstance(op, ChipLayer)]


@dataclass(frozen=True)
class CompiledFaults:
    """A scenario lowered to the mask form all execution paths share.

    ``stage_kills[s]`` is None or an ``(n,)`` bool mask of flat
    positions forced invalid right after chip layer ``s`` concentrates
    (chip output pins, before the following wiring).  ``dead_outputs``
    is an ``(m,)`` mask over output pads.  ``stuck0``/``stuck1`` mask
    input pins; ``flaky`` lists per-round Bernoulli pins.
    """

    n: int
    m: int
    stuck0: np.ndarray
    stuck1: np.ndarray
    stage_kills: tuple
    dead_outputs: np.ndarray
    flaky: tuple

    @property
    def has_interior(self) -> bool:
        return any(k is not None for k in self.stage_kills)


def compile_scenario(scenario: FaultScenario, switch) -> CompiledFaults:
    """Validate ``scenario`` against ``switch`` and lower it to masks.

    Raises :class:`FaultInjectionError` when a fault names hardware the
    switch does not have — an out-of-range pin, a stage beyond the
    design's chip layers, or any interior fault on a switch without a
    compiled stage plan.
    """
    n, m = switch.n, switch.m
    plan = plan_of(switch)
    layers = chip_layers(plan) if plan is not None else []
    stuck0 = np.zeros(n, dtype=bool)
    stuck1 = np.zeros(n, dtype=bool)
    kills: list[np.ndarray | None] = [None] * len(layers)
    dead_outputs = np.zeros(m, dtype=bool)
    flaky: list[tuple[int, float]] = []

    def _kill(stage: int, positions, fault: Fault) -> None:
        if plan is None:
            raise FaultInjectionError(
                f"{fault.describe()}: {type(switch).__name__} has no "
                f"compiled stage plan, so interior faults cannot be placed"
            )
        if not 0 <= stage < len(layers):
            raise FaultInjectionError(
                f"{fault.describe()}: switch has chip layers 0..{len(layers) - 1}"
            )
        if kills[stage] is None:
            kills[stage] = np.zeros(n, dtype=bool)
        kills[stage][positions] = True

    for fault in scenario.faults:
        if isinstance(fault, StuckAtFault):
            if not 0 <= fault.position < n:
                raise FaultInjectionError(
                    f"{fault.describe()}: switch has input pins 0..{n - 1}"
                )
            if fault.value not in (0, 1):
                raise FaultInjectionError(
                    f"stuck-at value must be 0 or 1, got {fault.value!r}"
                )
            (stuck1 if fault.value else stuck0)[fault.position] = True
        elif isinstance(fault, SeveredWireFault):
            if not 0 <= fault.position < n:
                raise FaultInjectionError(
                    f"{fault.describe()}: switch has wire positions 0..{n - 1}"
                )
            _kill(fault.stage, [fault.position], fault)
        elif isinstance(fault, DeadChipFault):
            if plan is not None and 0 <= fault.stage < len(layers):
                layer = layers[fault.stage]
                if not 0 <= fault.chip < layer.n_chips:
                    raise FaultInjectionError(
                        f"{fault.describe()}: stage {fault.stage} has chips "
                        f"0..{layer.n_chips - 1}"
                    )
                _kill(fault.stage, layer.groups[fault.chip], fault)
            else:
                _kill(fault.stage, [], fault)  # raises with the right message
        elif isinstance(fault, DeadOutputFault):
            if not 0 <= fault.output < m:
                raise FaultInjectionError(
                    f"{fault.describe()}: switch has output pads 0..{m - 1}"
                )
            dead_outputs[fault.output] = True
        elif isinstance(fault, FlakyPinFault):
            if not 0 <= fault.position < n:
                raise FaultInjectionError(
                    f"{fault.describe()}: switch has input pins 0..{n - 1}"
                )
            if not 0.0 <= fault.p <= 1.0:
                raise FaultInjectionError(
                    f"flaky pin probability must be in [0, 1], got {fault.p!r}"
                )
            flaky.append((fault.position, float(fault.p)))
        else:
            raise FaultInjectionError(f"unknown fault type {type(fault).__name__}")

    if (stuck0 & stuck1).any():
        bad = int(np.flatnonzero(stuck0 & stuck1)[0])
        raise FaultInjectionError(
            f"input pin {bad} is stuck at both 0 and 1 in scenario "
            f"{scenario.name!r}"
        )
    return CompiledFaults(
        n=n,
        m=m,
        stuck0=stuck0,
        stuck1=stuck1,
        stage_kills=tuple(kills),
        dead_outputs=dead_outputs,
        flaky=tuple(flaky),
    )
