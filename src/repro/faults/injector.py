"""Fault injection into the three execution paths of a switch.

:class:`FaultySwitch` wraps any :class:`~repro.switches.base.ConcentratorSwitch`
and applies a compiled :class:`~repro.faults.scenario.FaultScenario` to
its routing:

* **scalar** — for input/output faults the inner switch's own scalar
  ``setup``/``final_positions`` runs on the stuck-adjusted valid bits;
  interior kills walk the stage plan with the library's scalar
  chip-layer machinery (:func:`repro.switches.wiring.apply_chip_layer`),
  zeroing killed wires between stages;
* **batched** — :func:`repro.engine.batch.run_plan_with_faults` applies
  the same kill masks inside the plan executor;
* **gate level** — :func:`netlist_forces` lowers interior kills to
  stuck-at-0 forces on the named chip-output wires
  (``s{stage}c{chip}yv{wire}``) of the design's elaborated netlist.

The three paths are deliberately independent implementations of one
fault semantics; ``repro.faults.certify`` asserts their parity on every
sampled scenario.

Dead outputs support *graceful degradation*: with
``remap_outputs=True`` on a plan-based design, the switch's m logical
outputs are re-bonded to the first m *live* final wires (the positions
``m..n-1`` act as spares), so a dead pad costs capacity only when no
spare is left.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.engine.batch import BatchRouting, run_plan, run_plan_with_faults
from repro.engine.plan import FixedPermutation
from repro.switches.base import ConcentratorSwitch, Routing
from repro.switches.wiring import apply_chip_layer

from repro.faults.scenario import (
    CompiledFaults,
    FaultScenario,
    chip_layers,
    compile_scenario,
    fault_to_dict,
    plan_of,
)


class FaultySwitch(ConcentratorSwitch):
    """A switch with a fault scenario injected into its routing."""

    def __init__(
        self,
        inner: ConcentratorSwitch,
        scenario: FaultScenario,
        *,
        remap_outputs: bool = False,
    ):
        self.inner = inner
        self.scenario = scenario
        self.n = inner.n
        self.m = inner.m
        self.remap_outputs = bool(remap_outputs)
        self.compiled: CompiledFaults = compile_scenario(scenario, inner)
        self._plan = plan_of(inner)
        self._out = self._build_out_index()
        reg = obs.get_registry()
        if reg.enabled:
            for fault in scenario.faults:
                reg.counter(
                    "faults.injected", kind=fault_to_dict(fault)["kind"]
                ).inc()

    # -- output mapping --------------------------------------------------

    @property
    def _pos_space(self) -> int:
        """Size of the final-position space: all n wires for plan-based
        designs (positions ≥ m are the spares), the m output indices
        otherwise."""
        return self.n if self._plan is not None else self.m

    def _build_out_index(self) -> np.ndarray:
        """``out[p]`` = logical output for final position ``p`` (−1 =
        not an output / dead pad)."""
        space = self._pos_space
        dead = np.zeros(space, dtype=bool)
        dead[: self.m] = self.compiled.dead_outputs[: space]
        out = np.full(space, -1, dtype=np.int64)
        if self.remap_outputs:
            live = np.flatnonzero(~dead)
            window = live[: self.m]
            out[window] = np.arange(window.size, dtype=np.int64)
        else:
            pads = np.arange(self.m)
            keep = ~dead[: self.m]
            out[pads[keep]] = pads[keep]
        return out

    @property
    def live_outputs(self) -> int:
        """How many logical outputs remain readable under this scenario."""
        return int((self._out >= 0).sum())

    # -- contract --------------------------------------------------------

    @property
    def spec(self):
        """The *nominal* contract of the healthy design; the whole point
        of :mod:`repro.faults.certify` is re-measuring what actually
        survives the scenario."""
        return self.inner.spec

    def effective_valid(self, valid: np.ndarray) -> np.ndarray:
        """Valid bits as the first chip stage sees them: stuck-at-0
        pins read invalid, stuck-at-1 pins read valid (a phantom that
        consumes routing capacity)."""
        return (valid & ~self.compiled.stuck0) | self.compiled.stuck1

    # -- position tracking ----------------------------------------------

    def _pos_batch(self, eff: np.ndarray) -> np.ndarray:
        """Final position of every input's message, ``(B, n)``; −1 for
        invalid inputs and messages killed mid-flight.  For non-plan
        designs "position" is the output index the inner switch chose."""
        if self._plan is not None:
            if self.compiled.has_interior:
                return run_plan_with_faults(
                    self._plan, eff, self.compiled.stage_kills
                )
            pos = run_plan(self._plan, eff)
            return np.where(eff, pos, -1)
        base = self.inner.setup_batch(eff)
        return np.where(eff, base.input_to_output, -1)

    def _pos_scalar(self, eff: np.ndarray) -> np.ndarray:
        """Scalar oracle for :meth:`_pos_batch` on one trial row."""
        if self._plan is None:
            routing = self.inner.setup(eff).input_to_output
            return np.where(eff, routing, -1)
        if not self.compiled.has_interior:
            pos = self.inner.final_positions(eff)
            return np.where(eff, pos, -1)
        # Walk the plan with the scalar chip-layer machinery, killing
        # masked wires at each stage boundary.
        n = self.n
        bits = eff.copy()
        posn = np.arange(n, dtype=np.int64)  # current position of input i
        alive = eff.copy()
        layer_i = 0
        for op in self._plan.ops:
            if isinstance(op, FixedPermutation):
                posn = op.perm[posn]
                bits = _permute_bits(bits, op.perm)
                continue
            perm = apply_chip_layer(bits, list(op.groups))
            posn = perm[posn]
            bits = _permute_bits(bits, perm)
            kmask = self.compiled.stage_kills[layer_i]
            layer_i += 1
            if kmask is not None and kmask.any():
                bits[kmask] = False
                alive &= ~kmask[posn]
        return np.where(alive, posn, -1)

    def final_positions_batch(self, valid: np.ndarray) -> np.ndarray:
        """Batched faulty final positions (−1 already masked, unlike the
        healthy switches' ``final_positions_batch``)."""
        valid2d = self._check_valid_batch(valid)
        return self._pos_batch(self.effective_valid(valid2d))

    def occupancy_batch(self, valid: np.ndarray) -> np.ndarray:
        """``(B, pos_space)`` bool: which final wires carry a surviving
        message — the quantity the ε measurements and the gate-level
        setup plane both observe."""
        pos = self.final_positions_batch(valid)
        out = np.zeros((pos.shape[0], self._pos_space), dtype=bool)
        rows, cols = np.nonzero(pos >= 0)
        out[rows, pos[rows, cols]] = True
        return out

    # -- routing ---------------------------------------------------------

    def _routing_from_pos(self, pos: np.ndarray) -> np.ndarray:
        routing = np.full(pos.shape, -1, dtype=np.int64)
        ok = pos >= 0
        routing[ok] = self._out[pos[ok]]
        return routing

    def setup(self, valid: np.ndarray) -> Routing:
        valid1 = self._check_valid(valid)
        eff = self.effective_valid(valid1)
        routing = self._routing_from_pos(self._pos_scalar(eff))
        return Routing(
            n_inputs=self.n, n_outputs=self.m, valid=eff, input_to_output=routing
        )

    def _setup_batch(self, valid: np.ndarray) -> BatchRouting:
        eff = self.effective_valid(valid)
        routing = self._routing_from_pos(self._pos_batch(eff))
        return BatchRouting(
            n_inputs=self.n, n_outputs=self.m, valid=eff, input_to_output=routing
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"FaultySwitch({self.inner!r}, scenario={self.scenario.name!r}, "
            f"faults={self.scenario.fault_count})"
        )


def _permute_bits(bits: np.ndarray, perm: np.ndarray) -> np.ndarray:
    out = np.empty_like(bits)
    out[perm] = bits
    return out


def netlist_forces(fswitch: FaultySwitch, circuit) -> dict[int, bool] | None:
    """Lower a scenario's interior kills to netlist wire forces.

    Returns a wire-id → stuck-value map for
    :func:`repro.gates.evaluate.evaluate`, or None when some killed
    position has no named chip-output wire (partial layers).  Input
    stucks are applied to the input vector instead (equivalent to
    forcing the ``v{i}`` wires); dead outputs are pad failures and do
    not exist at the netlist level.
    """
    if fswitch._plan is None:
        return None
    forces: dict[int, bool] = {}
    layers = chip_layers(fswitch._plan)
    for stage, (op, kmask) in enumerate(
        zip(layers, fswitch.compiled.stage_kills)
    ):
        if kmask is None:
            continue
        width = op.chip_width
        for p in np.flatnonzero(kmask):
            slot = int(op.cm_of[p]) if p < op.cm_of.size else -1
            if slot < 0:
                return None  # pass-through position: no named wire to force
            chip, wire = divmod(slot, width)
            forces[circuit.wire(f"s{stage}c{chip}yv{wire}")] = False
    return forces


def gate_occupancy(
    fswitch: FaultySwitch, valid: np.ndarray
) -> np.ndarray | None:
    """Final-wire occupancy per the design's gate netlist with the
    scenario's faults forced in, shape ``(B, n)``; None when the design
    has no elaborated netlist (or n > MAX_GATE_N)."""
    from repro.gates.evaluate import evaluate
    from repro.verify.differential import netlist_for

    netlist = netlist_for(fswitch.inner)
    if netlist is None or fswitch._plan is None:
        return None
    circuit, outs = netlist
    forces = netlist_forces(fswitch, circuit)
    if forces is None:
        return None
    valid2d = fswitch._check_valid_batch(valid)
    eff = fswitch.effective_valid(valid2d)
    values = evaluate(circuit, eff, forces=forces)
    return values[:, outs]
