"""Fault campaigns: chains, parity scenarios, and resilience in one run.

One sweep of a switch produces:

* ``chains`` boundary-class degradation chains (provably monotone-α
  fault classes), each certified by
  :func:`repro.faults.certify.certify_chain`;
* one structural-class certificate of independent interior-fault
  scenarios — the cross-path parity campaign (batch vs scalar vs, at
  netlist sizes, gates);
* seeded flaky-pin resilience comparisons (retry/backoff vs no-retry),
  attached to the structural certificate.

``repro faults sweep`` and the CI ``chaos-smoke`` job drive this; any
parity violation or non-monotone boundary chain turns the sweep red.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.faults.certify import (
    DegradationCertificate,
    certify_chain,
    certify_scenarios,
    flaky_resilience,
)
from repro.faults.sampling import (
    sample_chain,
    sample_flaky_scenario,
    sample_scenario,
)
from repro.hardware.reliability import ReliabilityModel


@dataclass
class SweepResult:
    """Everything one sweep of one switch produced."""

    design: str
    certificates: list[DegradationCertificate] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(cert.ok for cert in self.certificates)

    @property
    def parity_violations(self) -> int:
        return sum(
            len(step.parity_failures)
            for cert in self.certificates
            for step in cert.steps
        )

    @property
    def non_monotone_chains(self) -> int:
        return sum(
            1 for cert in self.certificates if cert.monotone_alpha is False
        )

    @property
    def unrecovered_flaky(self) -> int:
        return sum(
            1
            for cert in self.certificates
            for r in cert.resilience
            if not r.get("recovered", True)
        )


def sweep_switch(
    switch,
    *,
    design: str,
    chains: int = 2,
    chain_length: int = 4,
    parity_scenarios: int = 3,
    parity_faults: int = 2,
    flaky_scenarios: int = 2,
    flaky_pins: int = 3,
    trials: int = 32,
    rounds: int = 40,
    seed: int = 0,
    model: ReliabilityModel | None = None,
    remap_outputs: bool = False,
    use_gates: bool = True,
    scalar_rows: int = 3,
) -> SweepResult:
    """Run one full fault campaign against ``switch``."""
    rng = np.random.default_rng(seed)
    result = SweepResult(design=design)
    with obs.span(
        "faults.sweep", design=design, chains=chains, trials=trials
    ):
        for index in range(chains):
            chain = sample_chain(
                switch,
                model,
                length=chain_length,
                rng=rng,
                classes="boundary",
                name=f"{design}-chain{index}",
                seed=seed + index,
            )
            result.certificates.append(
                certify_chain(
                    switch,
                    chain,
                    design=design,
                    classes="boundary",
                    trials=trials,
                    seed=seed,
                    remap_outputs=remap_outputs,
                    scalar_rows=scalar_rows,
                    use_gates=use_gates,
                )
            )
        scenarios = [
            sample_scenario(
                switch,
                model,
                faults=parity_faults,
                rng=rng,
                classes="structural",
                name=f"{design}-parity{index}",
                seed=seed + index,
            )
            for index in range(parity_scenarios)
        ]
        if scenarios or flaky_scenarios:
            cert = certify_scenarios(
                switch,
                scenarios,
                design=design,
                classes="structural",
                trials=trials,
                seed=seed,
                remap_outputs=remap_outputs,
                scalar_rows=scalar_rows,
                use_gates=use_gates,
            )
            for index in range(flaky_scenarios):
                flaky = sample_flaky_scenario(
                    switch,
                    pins=flaky_pins,
                    rng=rng,
                    name=f"{design}-flaky{index}",
                    seed=seed + index,
                )
                cert.resilience.append(
                    flaky_resilience(
                        switch, flaky, rounds=rounds, seed=seed + index
                    )
                )
            result.certificates.append(cert)
    return result
