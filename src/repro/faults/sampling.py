"""Reliability-driven fault sampling: MTBF numbers → concrete faults.

:mod:`repro.hardware.reliability` prices each part's field failure
rate — chips by ``chip_base · area^area_exponent`` and every bonded
pin/wire joint at ``pin_rate``.  This module turns those rates into a
weighted site list over a concrete switch and samples
:class:`~repro.faults.scenario.FaultScenario` objects from it, so a
fault campaign visits hardware in proportion to how often it actually
breaks.

Class presets
-------------
``"boundary"``
    Faults *after* all routing decisions: dead output pads, dead
    last-stage chips, severed wires at the last stage boundary.
    Killing at the boundary never re-ranks surviving messages, so the
    per-trial routed count is provably non-increasing as a boundary
    chain grows — these are the chains the degradation sweeps certify
    as monotone.
``"structural"``
    All kill-type faults anywhere: dead chips and severed wires at any
    stage, plus dead outputs.  An interior kill shifts the chip-local
    ranks of the messages behind it, and the following fixed wiring
    scatters that shift across different downstream chips — so
    monotone α is *not* guaranteed (only the parity of the three
    execution paths is), see ``docs/robustness.md``.
``"all"``
    Structural plus stuck-at-0/1 input pins.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FaultInjectionError
from repro.hardware.chip import HyperconcentratorChip
from repro.hardware.reliability import ReliabilityModel

from repro.faults.scenario import (
    DeadChipFault,
    DeadOutputFault,
    FaultScenario,
    FlakyPinFault,
    SeveredWireFault,
    StuckAtFault,
    chip_layers,
    plan_of,
)

CLASS_PRESETS = {
    "boundary": (frozenset({"dead_chip", "severed_wire", "dead_output"}), True),
    "structural": (
        frozenset({"dead_chip", "severed_wire", "dead_output"}),
        False,
    ),
    "all": (
        frozenset(
            {"dead_chip", "severed_wire", "dead_output", "stuck0", "stuck1"}
        ),
        False,
    ),
}


def _resolve_classes(classes) -> tuple[frozenset, bool]:
    """(fault kinds, boundary_only) from a preset name or an iterable
    of kind names."""
    if isinstance(classes, str):
        try:
            return CLASS_PRESETS[classes]
        except KeyError:
            raise FaultInjectionError(
                f"unknown fault class preset {classes!r}; "
                f"choose from {sorted(CLASS_PRESETS)}"
            ) from None
    return frozenset(classes), False


def fault_sites(
    switch, model: ReliabilityModel | None = None, *, classes="structural"
) -> list[tuple[float, object]]:
    """Every injectable fault site of ``switch`` with its failure rate.

    Returns ``(weight, fault)`` pairs; weights follow the reliability
    model (chip sites by :meth:`ReliabilityModel.chip_rate`, wire/pad
    sites by ``pin_rate``).
    """
    model = model if model is not None else ReliabilityModel()
    kinds, boundary_only = _resolve_classes(classes)
    plan = plan_of(switch)
    layers = chip_layers(plan) if plan is not None else []
    last = len(layers) - 1
    sites: list[tuple[float, object]] = []
    for stage, op in enumerate(layers):
        if boundary_only and stage != last:
            continue
        chip = HyperconcentratorChip(op.chip_width)
        chip_w = model.chip_rate(chip.area, chip.pins)
        if "dead_chip" in kinds:
            sites.extend(
                (chip_w, DeadChipFault(stage, c)) for c in range(op.n_chips)
            )
        if "severed_wire" in kinds:
            sites.extend(
                (model.pin_rate, SeveredWireFault(stage, int(p)))
                for p in op.flat32
            )
    if "dead_output" in kinds:
        sites.extend(
            (model.pin_rate, DeadOutputFault(j)) for j in range(switch.m)
        )
    if "stuck0" in kinds:
        sites.extend(
            (model.pin_rate, StuckAtFault(i, 0)) for i in range(switch.n)
        )
    if "stuck1" in kinds:
        sites.extend(
            (model.pin_rate, StuckAtFault(i, 1)) for i in range(switch.n)
        )
    if not sites:
        raise FaultInjectionError(
            f"no fault sites on {type(switch).__name__} for classes {classes!r}"
        )
    return sites


def _weighted_draws(
    sites: list[tuple[float, object]], count: int, rng: np.random.Generator
) -> list[object]:
    """``count`` distinct sites, each drawn with probability proportional
    to its failure rate (without replacement)."""
    pool = list(sites)
    picked: list[object] = []
    for _ in range(min(count, len(pool))):
        weights = np.array([w for w, _ in pool], dtype=float)
        index = int(rng.choice(len(pool), p=weights / weights.sum()))
        picked.append(pool.pop(index)[1])
    return picked


def sample_scenario(
    switch,
    model: ReliabilityModel | None = None,
    *,
    faults: int,
    rng: np.random.Generator,
    classes="structural",
    name: str = "sampled",
    seed: int = 0,
) -> FaultScenario:
    """One scenario of ``faults`` distinct reliability-weighted faults."""
    sites = fault_sites(switch, model, classes=classes)
    return FaultScenario(
        name=name, faults=tuple(_weighted_draws(sites, faults, rng)), seed=seed
    )


def sample_chain(
    switch,
    model: ReliabilityModel | None = None,
    *,
    length: int,
    rng: np.random.Generator,
    classes="boundary",
    name: str = "chain",
    seed: int = 0,
) -> list[FaultScenario]:
    """A nested scenario chain: ``length`` scenarios where scenario
    ``i`` holds the first ``i+1`` of one draw of distinct faults — the
    shape the degradation sweeps measure α against fault count on."""
    sites = fault_sites(switch, model, classes=classes)
    draws = _weighted_draws(sites, length, rng)
    return [
        FaultScenario(
            name=f"{name}-f{i + 1}", faults=tuple(draws[: i + 1]), seed=seed
        )
        for i in range(len(draws))
    ]


def sample_flaky_scenario(
    switch,
    *,
    pins: int,
    rng: np.random.Generator,
    p_range: tuple[float, float] = (0.05, 0.3),
    name: str = "flaky",
    seed: int = 0,
) -> FaultScenario:
    """``pins`` distinct flaky input pins with flip probabilities drawn
    uniformly from ``p_range`` (the resilient-routing test scenarios)."""
    count = min(pins, switch.n)
    positions = rng.choice(switch.n, size=count, replace=False)
    lo, hi = p_range
    faults = tuple(
        FlakyPinFault(int(pos), float(lo + (hi - lo) * rng.random()))
        for pos in positions
    )
    return FaultScenario(name=name, faults=faults, seed=seed)
