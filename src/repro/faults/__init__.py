"""repro.faults — fault injection and degraded-mode certification.

The reliability model (:mod:`repro.hardware.reliability`) says a
multichip concentrator *will* lose chips, wires, pins, and pads in the
field; this package answers what the switch still delivers when it
does:

* **fault model** (:mod:`repro.faults.scenario`) — declarative
  :class:`FaultScenario` objects (stuck-at pins, severed wires, dead
  chips, dead output pads, flaky pins) compiled to shared mask form;
* **injection** (:mod:`repro.faults.injector`) — :class:`FaultySwitch`
  threads one scenario through all three execution paths: the scalar
  setup, the batched engine (:func:`repro.engine.run_plan_with_faults`),
  and the gate netlists (forced wires);
* **sampling** (:mod:`repro.faults.sampling`) — reliability-weighted
  scenario draws, so MTBF figures become concrete fault distributions;
* **certification** (:mod:`repro.faults.certify`) — re-measured
  empirical α / worst ε per scenario plus cross-path parity, emitted
  as schema-tagged degradation certificates;
* **campaigns** (:mod:`repro.faults.sweep`) — the chains + parity +
  flaky-resilience bundle behind ``repro faults sweep`` and the CI
  chaos-smoke job.

See ``docs/robustness.md`` for the taxonomy and the certificate schema.
"""

from repro.faults.certify import (
    DEGRADATION_SCHEMA,
    DegradationCertificate,
    ScenarioReport,
    certify_chain,
    certify_scenarios,
    flaky_resilience,
    measure_scenario,
    probe_patterns,
    read_degradation_certificate,
    write_degradation_certificate,
)
from repro.faults.injector import FaultySwitch, gate_occupancy, netlist_forces
from repro.faults.sampling import (
    fault_sites,
    sample_chain,
    sample_flaky_scenario,
    sample_scenario,
)
from repro.faults.scenario import (
    CompiledFaults,
    DeadChipFault,
    DeadOutputFault,
    FaultScenario,
    FlakyPinFault,
    SeveredWireFault,
    StuckAtFault,
    compile_scenario,
    plan_of,
)
from repro.faults.sweep import SweepResult, sweep_switch

__all__ = [
    "DEGRADATION_SCHEMA",
    "CompiledFaults",
    "DeadChipFault",
    "DeadOutputFault",
    "DegradationCertificate",
    "FaultScenario",
    "FaultySwitch",
    "FlakyPinFault",
    "ScenarioReport",
    "SeveredWireFault",
    "StuckAtFault",
    "SweepResult",
    "certify_chain",
    "certify_scenarios",
    "compile_scenario",
    "fault_sites",
    "flaky_resilience",
    "gate_occupancy",
    "measure_scenario",
    "netlist_forces",
    "plan_of",
    "probe_patterns",
    "read_degradation_certificate",
    "sample_chain",
    "sample_flaky_scenario",
    "sample_scenario",
    "sweep_switch",
    "write_degradation_certificate",
]
