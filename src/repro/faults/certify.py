"""Degraded-mode certification: what does a broken switch still deliver?

A healthy ``(n, m, α)`` partial concentrator certificate
(:mod:`repro.verify`) proves the nominal contract.  This module
measures what survives a :class:`~repro.faults.scenario.FaultScenario`:

* **empirical α** — the worst per-trial fraction ``routed real
  messages / m`` over a seeded batch of capacity probes (each trial
  offers exactly ``k = m`` messages, the load level where Lemma 2's
  ``α = 1 − ε/m`` guarantee binds);
* **worst ε** — the largest measured nearsortedness of the surviving
  occupancy across the probe batch (plan-based designs only);
* **parity** — the scalar, batched, and (at gate-netlist sizes)
  gate-level fault-injected executions must agree exactly; any
  divergence is recorded as a violation, never silently dropped.

Chains of nested scenarios (see
:func:`repro.faults.sampling.sample_chain`) additionally get a
``monotone_alpha`` verdict: the same seeded probe patterns run against
every prefix, so for boundary-class chains the per-trial routed counts
— and hence empirical α — must be non-increasing in fault count.

Results serialize as schema-tagged **degradation certificates**
(``repro.faults/degradation@1``), mirroring the healthy certificates
of :mod:`repro.verify.certificate`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import obs
from repro.engine.batch import nearsortedness_batch
from repro.faults.injector import FaultySwitch, gate_occupancy
from repro.faults.scenario import FaultScenario

DEGRADATION_SCHEMA = "repro.faults/degradation@1"


def probe_patterns(
    n: int, m: int, trials: int, seed: int
) -> np.ndarray:
    """``(trials, n)`` capacity probes: each row offers exactly
    ``min(m, n)`` messages on uniformly random pins.  Seeded, so every
    prefix of a scenario chain measures the *same* workload."""
    rng = np.random.default_rng(seed)
    k = min(m, n)
    order = np.argsort(rng.random((trials, n)), axis=1)
    patterns = np.zeros((trials, n), dtype=bool)
    patterns[np.arange(trials)[:, None], order[:, :k]] = True
    return patterns


@dataclass
class ScenarioReport:
    """Measured degradation of one scenario."""

    name: str
    fault_count: int
    faults: list[str]
    trials: int
    empirical_alpha: float
    min_routed: int
    mean_routed: float
    live_outputs: int
    worst_epsilon: int | None
    scalar_checked: int
    gates_checked: bool
    parity_failures: list[str] = field(default_factory=list)

    @property
    def parity_ok(self) -> bool:
        return not self.parity_failures

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "fault_count": self.fault_count,
            "faults": self.faults,
            "trials": self.trials,
            "empirical_alpha": self.empirical_alpha,
            "min_routed": self.min_routed,
            "mean_routed": self.mean_routed,
            "live_outputs": self.live_outputs,
            "worst_epsilon": self.worst_epsilon,
            "scalar_checked": self.scalar_checked,
            "gates_checked": self.gates_checked,
            "parity_ok": self.parity_ok,
            "parity_failures": self.parity_failures,
        }


@dataclass
class DegradationCertificate:
    """Schema-tagged record of one degradation measurement campaign."""

    design: str
    switch: str
    n: int
    m: int
    nominal_alpha: float
    epsilon_bound: int | None
    kind: str  # "chain" | "scenarios"
    classes: str
    seed: int
    trials: int
    remap_outputs: bool
    steps: list[ScenarioReport] = field(default_factory=list)
    monotone_alpha: bool | None = None
    resilience: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        if any(not step.parity_ok for step in self.steps):
            return False
        if self.monotone_alpha is False:
            return False
        return all(r.get("recovered", True) for r in self.resilience)

    def as_dict(self) -> dict:
        return {
            "schema": DEGRADATION_SCHEMA,
            "design": self.design,
            "switch": self.switch,
            "n": self.n,
            "m": self.m,
            "nominal_alpha": self.nominal_alpha,
            "epsilon_bound": self.epsilon_bound,
            "kind": self.kind,
            "classes": self.classes,
            "seed": self.seed,
            "trials": self.trials,
            "remap_outputs": self.remap_outputs,
            "monotone_alpha": self.monotone_alpha,
            "ok": self.ok,
            "steps": [step.as_dict() for step in self.steps],
            "resilience": self.resilience,
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)


def write_degradation_certificate(
    certificate: DegradationCertificate, path: str | Path
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(certificate.to_json() + "\n")
    return path


def read_degradation_certificate(path: str | Path) -> dict:
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != DEGRADATION_SCHEMA:
        raise ValueError(
            f"{path} is not a {DEGRADATION_SCHEMA} document "
            f"(schema={doc.get('schema')!r})"
        )
    return doc


def measure_scenario(
    switch,
    scenario: FaultScenario,
    *,
    trials: int = 32,
    seed: int = 0,
    remap_outputs: bool = False,
    scalar_rows: int = 3,
    use_gates: bool = True,
) -> ScenarioReport:
    """Measure one scenario's degradation and cross-path parity."""
    fsw = FaultySwitch(switch, scenario.structural(), remap_outputs=remap_outputs)
    patterns = probe_patterns(switch.n, switch.m, trials, seed)
    with obs.span(
        "faults.measure",
        scenario=scenario.name, faults=scenario.fault_count, trials=trials,
    ):
        batch = fsw.setup_batch(patterns)
        routing = batch.input_to_output
        real_routed = ((routing >= 0) & patterns).sum(axis=1)
        denom = min(switch.m, switch.n)
        failures: list[str] = []

        # Scalar parity on a spread of probe rows.
        checked = min(scalar_rows, trials)
        stride = max(1, trials // max(1, checked))
        rows = list(range(0, trials, stride))[:checked]
        for row in rows:
            scalar = fsw.setup(patterns[row])
            if not np.array_equal(scalar.input_to_output, routing[row]):
                bad = np.flatnonzero(scalar.input_to_output != routing[row])
                failures.append(
                    f"trial {row}: scalar/batch divergence at inputs "
                    f"{bad.tolist()[:8]}"
                )

        # ε of the surviving occupancy (plan-based designs only).
        worst_eps: int | None = None
        if fsw._plan is not None:
            occupancy = fsw.occupancy_batch(patterns)
            worst_eps = int(nearsortedness_batch(occupancy).max(initial=0))
            if use_gates:
                gates = gate_occupancy(fsw, patterns)
                gates_checked = gates is not None
                if gates_checked and not np.array_equal(gates, occupancy):
                    mism = np.nonzero((gates != occupancy).any(axis=1))[0]
                    failures.append(
                        f"gate/functional occupancy divergence in trials "
                        f"{mism.tolist()[:8]}"
                    )
            else:
                gates_checked = False
        else:
            gates_checked = False
        obs.counter("faults.scenarios").inc()
    min_routed = int(real_routed.min()) if trials else 0
    return ScenarioReport(
        name=scenario.name,
        fault_count=scenario.fault_count,
        faults=scenario.describe(),
        trials=trials,
        empirical_alpha=min_routed / denom,
        min_routed=min_routed,
        mean_routed=float(real_routed.mean()) if trials else 0.0,
        live_outputs=fsw.live_outputs,
        worst_epsilon=worst_eps,
        scalar_checked=len(rows),
        gates_checked=gates_checked,
        parity_failures=failures,
    )


def certify_chain(
    switch,
    chain: list[FaultScenario],
    *,
    design: str,
    classes: str = "boundary",
    trials: int = 32,
    seed: int = 0,
    remap_outputs: bool = False,
    scalar_rows: int = 3,
    use_gates: bool = True,
) -> DegradationCertificate:
    """Measure a nested scenario chain (healthy baseline prepended) and
    render the monotone-α verdict."""
    healthy = FaultScenario(name="healthy", faults=(), seed=seed)
    steps = [
        measure_scenario(
            switch,
            scenario,
            trials=trials,
            seed=seed,
            remap_outputs=remap_outputs,
            scalar_rows=scalar_rows,
            use_gates=use_gates,
        )
        for scenario in [healthy, *chain]
    ]
    alphas = [step.empirical_alpha for step in steps]
    monotone = all(b <= a + 1e-12 for a, b in zip(alphas, alphas[1:]))
    return DegradationCertificate(
        design=design,
        switch=repr(switch),
        n=switch.n,
        m=switch.m,
        nominal_alpha=float(switch.spec.alpha),
        epsilon_bound=int(getattr(switch, "epsilon_bound", 0) or 0)
        if hasattr(switch, "epsilon_bound")
        else None,
        kind="chain",
        classes=classes,
        seed=seed,
        trials=trials,
        remap_outputs=remap_outputs,
        steps=steps,
        monotone_alpha=monotone,
    )


def certify_scenarios(
    switch,
    scenarios: list[FaultScenario],
    *,
    design: str,
    classes: str = "structural",
    trials: int = 32,
    seed: int = 0,
    remap_outputs: bool = False,
    scalar_rows: int = 3,
    use_gates: bool = True,
) -> DegradationCertificate:
    """Measure independent scenarios (no monotone verdict — interior
    kills legitimately re-rank survivors, see ``docs/robustness.md``)."""
    steps = [
        measure_scenario(
            switch,
            scenario,
            trials=trials,
            seed=seed,
            remap_outputs=remap_outputs,
            scalar_rows=scalar_rows,
            use_gates=use_gates,
        )
        for scenario in scenarios
    ]
    return DegradationCertificate(
        design=design,
        switch=repr(switch),
        n=switch.n,
        m=switch.m,
        nominal_alpha=float(switch.spec.alpha),
        epsilon_bound=int(getattr(switch, "epsilon_bound", 0) or 0)
        if hasattr(switch, "epsilon_bound")
        else None,
        kind="scenarios",
        classes=classes,
        seed=seed,
        trials=trials,
        remap_outputs=remap_outputs,
        steps=steps,
        monotone_alpha=None,
    )


def flaky_resilience(
    switch,
    scenario: FaultScenario,
    *,
    rounds: int = 40,
    load: float = 0.35,
    seed: int = 0,
    max_retries: int = 8,
    ttl: int | None = 64,
) -> dict:
    """Run one flaky-pin scenario under no-retry vs retry/backoff.

    Both runs see identical traffic and identical per-round pin flips
    (the flip stream is seeded by the scenario, not the policy), so the
    retry simulator's delivery rate is directly comparable — and must
    recover at least the no-retry rate.
    """
    from repro.messages.congestion import DropPolicy, RetryPolicy
    from repro.network.simulate import SwitchSimulation
    from repro.network.traffic import BernoulliTraffic

    def _run(policy):
        traffic = BernoulliTraffic(switch.n, load, payload_bits=0, seed=seed)
        sim = SwitchSimulation(
            switch, traffic, policy, seed=seed, scenario=scenario
        )
        return sim.run(rounds)

    drop = _run(DropPolicy())
    retry = _run(
        RetryPolicy(max_retries=max_retries, ttl=ttl, seed=seed)
    )
    return {
        "scenario": scenario.name,
        "faults": scenario.describe(),
        "rounds": rounds,
        "load": load,
        "drop_delivery_rate": drop.delivery_rate,
        "retry_delivery_rate": retry.delivery_rate,
        "drop_faulted": drop.faulted,
        "retry_faulted": retry.faulted,
        "retry_expired": retry.expired,
        "recovered": retry.delivery_rate >= drop.delivery_rate - 1e-12,
    }
