"""Topological evaluation of combinational netlists.

Circuits are stored in topological order, so evaluation is a single
pass.  :func:`evaluate` is vectorised over input *batches*: passing a
``(batch, n_inputs)`` bool array simulates every pattern in one sweep,
which is how the exhaustive small-n equivalence tests stay fast.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CircuitError
from repro.gates.netlist import Circuit, Op


def evaluate(circuit: Circuit, inputs: np.ndarray) -> np.ndarray:
    """Evaluate every wire of ``circuit``.

    ``inputs`` is a bool array of shape ``(n_inputs,)`` or
    ``(batch, n_inputs)`` giving values for the INPUT wires in creation
    order.  Returns a bool array of shape ``(n_wires,)`` or
    ``(batch, n_wires)`` with the value of every wire.
    """
    arr = np.asarray(inputs, dtype=bool)
    squeeze = arr.ndim == 1
    if squeeze:
        arr = arr[None, :]
    input_wires = circuit.input_wires()
    if arr.shape[1] != len(input_wires):
        raise CircuitError(
            f"circuit has {len(input_wires)} inputs, got {arr.shape[1]} values"
        )
    batch = arr.shape[0]
    values = np.zeros((batch, circuit.n_wires), dtype=bool)
    next_input = 0
    for gate in circuit.gates:
        op = gate.op
        out = gate.output
        if op is Op.INPUT:
            values[:, out] = arr[:, next_input]
            next_input += 1
        elif op is Op.CONST0:
            values[:, out] = False
        elif op is Op.CONST1:
            values[:, out] = True
        elif op in (Op.BUF,):
            values[:, out] = values[:, gate.inputs[0]]
        elif op is Op.NOT:
            values[:, out] = ~values[:, gate.inputs[0]]
        elif op in (Op.AND, Op.NAND):
            acc = values[:, gate.inputs[0]].copy()
            for src in gate.inputs[1:]:
                acc &= values[:, src]
            values[:, out] = ~acc if op is Op.NAND else acc
        elif op in (Op.OR, Op.NOR):
            acc = values[:, gate.inputs[0]].copy()
            for src in gate.inputs[1:]:
                acc |= values[:, src]
            values[:, out] = ~acc if op is Op.NOR else acc
        elif op is Op.XOR:
            acc = values[:, gate.inputs[0]].copy()
            for src in gate.inputs[1:]:
                acc ^= values[:, src]
            values[:, out] = acc
        else:  # pragma: no cover - exhaustive over Op
            raise CircuitError(f"unknown op {op}")
    return values[0] if squeeze else values


def evaluate_wires(
    circuit: Circuit, inputs: np.ndarray, wires: list[int]
) -> np.ndarray:
    """Evaluate and project onto a wire subset (same batch semantics)."""
    values = evaluate(circuit, inputs)
    if values.ndim == 1:
        return values[wires]
    return values[:, wires]
