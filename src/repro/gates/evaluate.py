"""Topological evaluation of combinational netlists.

Circuits are stored in topological order, so evaluation is a single
pass.  :func:`evaluate` is vectorised over input *batches*: passing a
``(batch, n_inputs)`` bool array simulates every pattern in one sweep,
which is how the exhaustive small-n equivalence tests stay fast.

:func:`evaluate_packed` goes one step further with **bit-parallel**
evaluation: 64 trials are packed into each ``uint64`` lane (trial ``b``
lives in bit ``b mod 64`` of word ``b // 64``), so one bitwise machine
op advances 64 Monte-Carlo trials at once — the classical 0/1-input
trick from the sorting-network literature.  Results are bit-exact with
:func:`evaluate`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CircuitError
from repro.gates.netlist import Circuit, Op

#: Trials per packed lane.
WORD_BITS = 64

_SHIFTS = np.arange(WORD_BITS, dtype=np.uint64)


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(B, w)`` bool array into ``(⌈B/64⌉, w)`` uint64 words.

    Trial ``b`` occupies bit ``b mod 64`` of word row ``b // 64``;
    padding bits in the last row are zero.
    """
    arr = np.asarray(bits, dtype=bool)
    if arr.ndim != 2:
        raise CircuitError(f"pack_bits expects a (B, w) array, got shape {arr.shape}")
    batch, width = arr.shape
    words = -(-batch // WORD_BITS)
    padded = np.zeros((words * WORD_BITS, width), dtype=np.uint64)
    padded[:batch] = arr
    lanes = padded.reshape(words, WORD_BITS, width) << _SHIFTS[None, :, None]
    return np.bitwise_or.reduce(lanes, axis=1)


def unpack_bits(words: np.ndarray, batch: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: the first ``batch`` trials as a
    ``(batch, w)`` bool array."""
    arr = np.asarray(words, dtype=np.uint64)
    if arr.ndim != 2:
        raise CircuitError(f"unpack_bits expects a (W, w) array, got shape {arr.shape}")
    lanes = (arr[:, None, :] >> _SHIFTS[None, :, None]) & np.uint64(1)
    flat = lanes.reshape(arr.shape[0] * WORD_BITS, arr.shape[1])
    if batch > flat.shape[0]:
        raise CircuitError(f"batch {batch} exceeds packed capacity {flat.shape[0]}")
    return flat[:batch].astype(bool)


def _force_tables(
    circuit: Circuit, forces
) -> tuple[np.ndarray, np.ndarray] | None:
    """Validate a wire→bool force map into (mask, value) lookup arrays.

    A *forced* wire models a stuck-at fault: whatever its driving gate
    computes, the wire presents the forced constant to every reader.
    """
    if not forces:
        return None
    mask = np.zeros(circuit.n_wires, dtype=bool)
    val = np.zeros(circuit.n_wires, dtype=bool)
    for wire, value in forces.items():
        if not 0 <= int(wire) < circuit.n_wires:
            raise CircuitError(f"forced wire {wire} is not in the circuit")
        mask[int(wire)] = True
        val[int(wire)] = bool(value)
    return mask, val


def evaluate(
    circuit: Circuit, inputs: np.ndarray, *, forces=None
) -> np.ndarray:
    """Evaluate every wire of ``circuit``.

    ``inputs`` is a bool array of shape ``(n_inputs,)`` or
    ``(batch, n_inputs)`` giving values for the INPUT wires in creation
    order.  Returns a bool array of shape ``(n_wires,)`` or
    ``(batch, n_wires)`` with the value of every wire.

    ``forces`` optionally maps wire ids to stuck-at values: each listed
    wire presents its forced constant to every downstream gate no
    matter what its driver computes (fault injection, see
    :mod:`repro.faults`).
    """
    arr = np.asarray(inputs, dtype=bool)
    squeeze = arr.ndim == 1
    if squeeze:
        arr = arr[None, :]
    input_wires = circuit.input_wires()
    if arr.shape[1] != len(input_wires):
        raise CircuitError(
            f"circuit has {len(input_wires)} inputs, got {arr.shape[1]} values"
        )
    forced = _force_tables(circuit, forces)
    batch = arr.shape[0]
    values = np.zeros((batch, circuit.n_wires), dtype=bool)
    next_input = 0
    for gate in circuit.gates:
        op = gate.op
        out = gate.output
        if forced is not None and forced[0][out]:
            values[:, out] = forced[1][out]
            if op is Op.INPUT:
                next_input += 1
            continue
        if op is Op.INPUT:
            values[:, out] = arr[:, next_input]
            next_input += 1
        elif op is Op.CONST0:
            values[:, out] = False
        elif op is Op.CONST1:
            values[:, out] = True
        elif op in (Op.BUF,):
            values[:, out] = values[:, gate.inputs[0]]
        elif op is Op.NOT:
            values[:, out] = ~values[:, gate.inputs[0]]
        elif op in (Op.AND, Op.NAND):
            acc = values[:, gate.inputs[0]].copy()
            for src in gate.inputs[1:]:
                acc &= values[:, src]
            values[:, out] = ~acc if op is Op.NAND else acc
        elif op in (Op.OR, Op.NOR):
            acc = values[:, gate.inputs[0]].copy()
            for src in gate.inputs[1:]:
                acc |= values[:, src]
            values[:, out] = ~acc if op is Op.NOR else acc
        elif op is Op.XOR:
            acc = values[:, gate.inputs[0]].copy()
            for src in gate.inputs[1:]:
                acc ^= values[:, src]
            values[:, out] = acc
        else:  # pragma: no cover - exhaustive over Op
            raise CircuitError(f"unknown op {op}")
    return values[0] if squeeze else values


def evaluate_packed(
    circuit: Circuit, inputs: np.ndarray, *, forces=None
) -> np.ndarray:
    """Bit-parallel evaluation: pack the trial batch into uint64 lanes,
    evaluate every wire with bitwise ops, and unpack.

    ``inputs`` is ``(batch, n_inputs)`` bool; returns
    ``(batch, n_wires)`` bool, bit-exact with :func:`evaluate`
    (including the ``forces`` stuck-at map, forced across all lanes).
    The NOT/NAND/NOR complements flip the padding bits of the last word
    too, which is harmless — unpacking discards them.
    """
    arr = np.asarray(inputs, dtype=bool)
    squeeze = arr.ndim == 1
    if squeeze:
        arr = arr[None, :]
    input_wires = circuit.input_wires()
    if arr.shape[1] != len(input_wires):
        raise CircuitError(
            f"circuit has {len(input_wires)} inputs, got {arr.shape[1]} values"
        )
    forced = _force_tables(circuit, forces)
    batch = arr.shape[0]
    packed = pack_bits(arr)
    words = packed.shape[0]
    ones = np.uint64(0xFFFFFFFFFFFFFFFF)
    values = np.zeros((words, circuit.n_wires), dtype=np.uint64)
    next_input = 0
    for gate in circuit.gates:
        op = gate.op
        out = gate.output
        if forced is not None and forced[0][out]:
            values[:, out] = ones if forced[1][out] else 0
            if op is Op.INPUT:
                next_input += 1
            continue
        if op is Op.INPUT:
            values[:, out] = packed[:, next_input]
            next_input += 1
        elif op is Op.CONST0:
            values[:, out] = 0
        elif op is Op.CONST1:
            values[:, out] = ones
        elif op is Op.BUF:
            values[:, out] = values[:, gate.inputs[0]]
        elif op is Op.NOT:
            values[:, out] = ~values[:, gate.inputs[0]]
        elif op in (Op.AND, Op.NAND):
            acc = values[:, gate.inputs[0]].copy()
            for src in gate.inputs[1:]:
                acc &= values[:, src]
            values[:, out] = ~acc if op is Op.NAND else acc
        elif op in (Op.OR, Op.NOR):
            acc = values[:, gate.inputs[0]].copy()
            for src in gate.inputs[1:]:
                acc |= values[:, src]
            values[:, out] = ~acc if op is Op.NOR else acc
        elif op is Op.XOR:
            acc = values[:, gate.inputs[0]].copy()
            for src in gate.inputs[1:]:
                acc ^= values[:, src]
            values[:, out] = acc
        else:  # pragma: no cover - exhaustive over Op
            raise CircuitError(f"unknown op {op}")
    result = unpack_bits(values, batch)
    return result[0] if squeeze else result


def evaluate_wires(
    circuit: Circuit, inputs: np.ndarray, wires: list[int]
) -> np.ndarray:
    """Evaluate and project onto a wire subset (same batch semantics)."""
    values = evaluate(circuit, inputs)
    if values.ndim == 1:
        return values[wires]
    return values[:, wires]
