"""Gate-delay (critical path) analysis.

The paper states its delay results in *gate delays* — e.g. a message
incurs exactly ``2 lg n`` gate delays through the hyperconcentrator
chip and ``3 lg n + O(1)`` through the Revsort switch.  These helpers
measure the same quantity on our netlists: the longest gate-weighted
path, optionally restricted to paths that start at a chosen set of
source wires (so the *data-path* delay can be separated from the
*setup/control* depth).
"""

from __future__ import annotations

import numpy as np

from repro.gates.netlist import Circuit


def wire_depths(circuit: Circuit, sources: list[int] | None = None) -> np.ndarray:
    """Longest gate-delay path ending at each wire.

    With ``sources`` given, only paths originating at those wires count;
    wires unreachable from any source get depth −1 (their value is
    fixed once setup settles, so they add no delay to a message).
    Without ``sources``, every INPUT/CONST wire is a source at depth 0.
    """
    n = circuit.n_wires
    depth = np.full(n, -1, dtype=np.int64)
    if sources is None:
        for gate in circuit.gates:
            if not gate.inputs:
                depth[gate.output] = 0
    else:
        for wire in sources:
            depth[wire] = 0
    for gate in circuit.gates:
        if not gate.inputs:
            continue
        best = -1
        for src in gate.inputs:
            if depth[src] > best:
                best = depth[src]
        if best >= 0:
            candidate = best + gate.op.delay
            if candidate > depth[gate.output]:
                depth[gate.output] = candidate
    return depth


def critical_path_length(
    circuit: Circuit,
    sources: list[int] | None = None,
    sinks: list[int] | None = None,
) -> int:
    """The longest gate-delay path from ``sources`` to ``sinks``
    (defaults: all inputs/constants to all wires)."""
    depth = wire_depths(circuit, sources)
    if sinks is None:
        return int(depth.max(initial=0))
    reached = depth[sinks]
    reached = reached[reached >= 0]
    return int(reached.max(initial=0))
