"""Gate-level datapath of the prefix + butterfly hyperconcentrator.

The Section 1 alternative switch is "not combinational": its 2×2
switches are *set* by sequential control once per setup, then message
bits stream through pure mux logic.  This module builds that datapath
as a netlist — ``lg n`` stages of 2×2 crossbar cells, each cell two
2:1 muxes sharing one latched setting bit — so the streaming phase can
be simulated and timed at the gate level.

Inputs: data wires ``d{i}`` and one setting wire ``set_{t}_{p}`` per
stage t and pair p (driven externally from
:meth:`repro.switches.prefix_butterfly.PrefixButterflyHyperconcentrator.
switch_settings`).  Outputs ``y{i}``.

A message bit traverses one mux (2 gate levels) per stage: ``2 lg n``
gate delays — interestingly, the same constant as the paper's
combinational chip, the difference being the latched control state.
"""

from __future__ import annotations

import numpy as np

from repro._util.bits import ilg
from repro.errors import ConfigurationError
from repro.gates.evaluate import evaluate
from repro.gates.netlist import Circuit, Op


def _mux(circuit: Circuit, sel: int, a: int, b: int) -> int:
    """2:1 mux: sel ? b : a  (two gate levels: AND plane + OR)."""
    nsel = circuit.add_gate(Op.NOT, sel)
    take_a = circuit.add_gate(Op.AND, nsel, a)
    take_b = circuit.add_gate(Op.AND, sel, b)
    return circuit.add_gate(Op.OR, take_a, take_b)


def build_butterfly_datapath(n: int) -> Circuit:
    """The reverse-butterfly mux datapath for ``n = 2^q`` wires."""
    if n < 2:
        raise ConfigurationError(f"butterfly datapath needs n >= 2, got {n}")
    q = ilg(n)
    circuit = Circuit()
    wires = [circuit.input(name=f"d{i}") for i in range(n)]
    settings: list[list[int]] = []
    for t in range(q):
        stage = [
            circuit.input(name=f"set_{t}_{p}") for p in range(n // 2)
        ]
        settings.append(stage)

    for t in range(q):
        bit = 1 << t
        new_wires = list(wires)
        pair_index = 0
        for lo in range(n):
            if lo & bit:
                continue
            hi = lo | bit
            sel = settings[t][pair_index]
            # crossed (sel=1): lo gets hi's data and vice versa.
            new_wires[lo] = _mux(circuit, sel, wires[lo], wires[hi])
            new_wires[hi] = _mux(circuit, sel, wires[hi], wires[lo])
            pair_index += 1
        wires = new_wires

    for i, wire in enumerate(wires):
        circuit.set_name(f"y{i}", circuit.add_gate(Op.BUF, wire))
    return circuit


def stream_bit(
    circuit: Circuit,
    n: int,
    data: np.ndarray,
    settings: list[np.ndarray],
) -> np.ndarray:
    """Evaluate one data cycle through the latched-settings datapath."""
    q = ilg(n)
    if len(settings) != q:
        raise ConfigurationError(f"expected {q} setting stages, got {len(settings)}")
    inputs = [np.asarray(data, dtype=bool)]
    for stage in settings:
        inputs.append(np.asarray(stage, dtype=bool))
    flat = np.concatenate(inputs)
    values = evaluate(circuit, flat)
    return np.array([values[circuit.wire(f"y{i}")] for i in range(n)], dtype=bool)


def datapath_delay(circuit: Circuit, n: int) -> int:
    """Measured gate delays from data inputs to data outputs."""
    from repro.gates.depth import critical_path_length

    sources = [circuit.wire(f"d{i}") for i in range(n)]
    sinks = [circuit.wire(f"y{i}") for i in range(n)]
    return critical_path_length(circuit, sources, sinks)
