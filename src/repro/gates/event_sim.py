"""Event-driven timing simulation of combinational netlists.

The paper's delay claims ("a message incurs 3 lg n + O(1) gate
delays") are statements about when outputs *settle* after inputs
change.  The static analyzer in :mod:`repro.gates.depth` bounds this
by the critical path; this module actually simulates the transient:
every gate re-evaluates ``delay`` time units after an input edge, so
the simulation reports the true settle time (= the longest *sensitised*
path, ≤ the static critical path) and the glitch activity on each wire.

Used by the tests to confirm that the static gate-delay accounting the
hardware model relies on is an upper bound that the dynamic behaviour
actually meets.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import CircuitError
from repro.gates.netlist import Circuit, Op


@dataclass
class TimingResult:
    """Outcome of one input transition."""

    settle_time: int
    final_values: np.ndarray
    transitions_per_wire: np.ndarray

    @property
    def total_transitions(self) -> int:
        return int(self.transitions_per_wire.sum())

    def glitches(self) -> int:
        """Extra transitions beyond the single final edge each changed
        wire needs (a proxy for dynamic power)."""
        extra = self.transitions_per_wire - 1
        return int(extra[extra > 0].sum())


def _gate_output(op: Op, in_values: list[bool]) -> bool:
    if op is Op.BUF:
        return in_values[0]
    if op is Op.NOT:
        return not in_values[0]
    if op is Op.AND:
        return all(in_values)
    if op is Op.NAND:
        return not all(in_values)
    if op is Op.OR:
        return any(in_values)
    if op is Op.NOR:
        return not any(in_values)
    if op is Op.XOR:
        acc = False
        for v in in_values:
            acc ^= v
        return acc
    raise CircuitError(f"gate op {op} has no evaluation rule")


class EventSimulator:
    """Unit-delay event-driven simulator for a :class:`Circuit`."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self._fanout: list[list[int]] = [[] for _ in range(circuit.n_wires)]
        for gate in circuit.gates:
            for src in gate.inputs:
                self._fanout[src].append(gate.output)
        self._input_wires = circuit.input_wires()

    def _initial_values(self, inputs: np.ndarray) -> np.ndarray:
        from repro.gates.evaluate import evaluate

        return evaluate(self.circuit, inputs)

    def transition(
        self, old_inputs: np.ndarray, new_inputs: np.ndarray
    ) -> TimingResult:
        """Settle the circuit on ``old_inputs``, switch to
        ``new_inputs`` at t = 0, and propagate events until quiescent.
        """
        old = np.asarray(old_inputs, dtype=bool)
        new = np.asarray(new_inputs, dtype=bool)
        if old.shape != new.shape or old.size != len(self._input_wires):
            raise CircuitError("input vectors must match the circuit's inputs")

        values = self._initial_values(old).copy()
        transitions = np.zeros(self.circuit.n_wires, dtype=np.int64)

        gates_by_output = {g.output: g for g in self.circuit.gates}
        forced = {
            wire: bool(bit) for wire, bit in zip(self._input_wires, new)
        }

        # (time, wire) re-evaluation events; gate outputs are computed
        # at *fire* time so late-arriving input changes are honoured.
        queue: list[tuple[int, int]] = []
        for wire, bit in forced.items():
            if values[wire] != bit:
                heapq.heappush(queue, (0, wire))

        settle = 0
        while queue:
            time, wire = heapq.heappop(queue)
            gate = gates_by_output[wire]
            if gate.op is Op.INPUT:
                value = forced[wire]
            elif gate.op in (Op.CONST0, Op.CONST1):
                continue
            else:
                value = _gate_output(
                    gate.op, [bool(values[s]) for s in gate.inputs]
                )
            if values[wire] == value:
                continue  # glitch cancelled before it happened
            values[wire] = value
            transitions[wire] += 1
            settle = max(settle, time)
            for sink in self._fanout[wire]:
                sink_gate = gates_by_output[sink]
                heapq.heappush(queue, (time + sink_gate.op.delay, sink))
        result = TimingResult(
            settle_time=settle,
            final_values=values,
            transitions_per_wire=transitions,
        )
        reg = obs.get_registry()
        if reg.enabled:
            reg.counter("gates.transitions").inc()
            reg.counter("gates.wire_events").inc(result.total_transitions)
            reg.histogram("gates.settle_time").observe(settle)
            reg.histogram("gates.glitches").observe(result.glitches())
        return result

    def measure_settle_time(self, trials: int, rng: np.random.Generator) -> int:
        """Worst observed settle time over random input transitions."""
        n_inputs = len(self._input_wires)
        worst = 0
        previous = rng.random(n_inputs) < 0.5
        for _ in range(trials):
            nxt = rng.random(n_inputs) < 0.5
            result = self.transition(previous, nxt)
            worst = max(worst, result.settle_time)
            previous = nxt
        return worst
