"""Gate-level combinational circuit substrate.

The paper's switches are combinational: the valid bits establish
routing paths during the setup cycle and message bits then flow through
pure gate logic.  This package provides

* a small netlist representation and evaluator
  (:mod:`repro.gates.netlist`, :mod:`repro.gates.evaluate`),
* gate-delay (critical path) analysis (:mod:`repro.gates.depth`),
* reusable combinational builders — OR/AND trees, ripple and prefix
  population counters, equality decoders (:mod:`repro.gates.builders`),
* a gate-level hyperconcentrator netlist
  (:mod:`repro.gates.hyperconc_gates`) that is functionally identical
  to the fast model in :mod:`repro.switches.hyperconcentrator` (the
  tests check this exhaustively for small n) with Θ(n²) crosspoint
  components and an O(lg n)-depth data path, matching the Section 1
  figures for the Cormen–Leiserson chip.
"""

from repro.gates.depth import critical_path_length, wire_depths
from repro.gates.evaluate import evaluate, evaluate_packed, pack_bits, unpack_bits
from repro.gates.hyperconc_gates import GateHyperconcentrator, build_hyperconcentrator
from repro.gates.netlist import Circuit, Op

__all__ = [
    "Circuit",
    "GateHyperconcentrator",
    "Op",
    "build_hyperconcentrator",
    "critical_path_length",
    "evaluate",
    "evaluate_packed",
    "pack_bits",
    "unpack_bits",
    "wire_depths",
]
