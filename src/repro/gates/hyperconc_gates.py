"""Gate-level hyperconcentrator netlist (the single-chip building block).

The exact Cormen–Leiserson schematic (ICPP 1986) is not in the paper
text, so this is a functionally equivalent **rank crossbar** with the
same headline characteristics: a highly regular Θ(n²)-component layout
and a logarithmic-depth data path (DESIGN.md records the substitution).

Structure
---------
* **setup logic** — a parallel-prefix population counter computes each
  input's *rank* (number of valid bits among inputs 0..i); a per-
  crosspoint decoder raises ``route[i][j]`` iff input i is valid and
  its rank equals j+1, i.e. input i owns output j.  This happens once
  per setup cycle.
* **data path** — output ``Y_j = OR_i (D_i AND route[i][j])``: one AND
  per crosspoint plus a balanced OR tree, so a *message bit* incurs
  ``1 + ⌈lg n⌉`` gate delays after setup — the same Θ(lg n) scaling as
  the paper's ``2 lg n`` figure (the delay bench reports both).

Wire-name conventions: valid inputs ``v{i}``, data inputs ``d{i}``,
crosspoint controls ``route_{i}_{j}``, outputs ``y{j}`` and output
valid bits ``yv{j}``.
"""

from __future__ import annotations

import numpy as np

from repro.core.concentration import ConcentratorSpec
from repro.errors import ConfigurationError
from repro.gates.builders import equals_const, or_tree, prefix_popcounts
from repro.gates.depth import critical_path_length
from repro.gates.evaluate import evaluate
from repro.gates.netlist import Circuit, Op
from repro.switches.base import ConcentratorSwitch, Routing


def build_hyperconcentrator(n: int, *, with_datapath: bool = True) -> Circuit:
    """Build the n-by-n hyperconcentrator netlist.

    ``with_datapath=False`` builds only the setup logic (valid bits in,
    crosspoint controls and output valid bits out), which is enough for
    routing extraction and keeps exhaustive tests cheap.
    """
    if n < 1:
        raise ConfigurationError(f"size must be positive, got {n}")
    circuit = Circuit()
    valid = [circuit.input(name=f"v{i}") for i in range(n)]
    data = (
        [circuit.input(name=f"d{i}") for i in range(n)] if with_datapath else []
    )

    ranks = prefix_popcounts(circuit, valid)

    # Crosspoint controls: route_{i}_{j} = valid_i AND (rank_i == j+1).
    route: list[list[int]] = []
    for i in range(n):
        row = []
        for j in range(min(i + 1, n)):  # rank_i <= i+1, so j+1 <= i+1
            eq = equals_const(circuit, ranks[i], j + 1)
            row.append(
                circuit.add_gate(Op.AND, valid[i], eq, name=f"route_{i}_{j}")
            )
        # Crosspoints with j >= i+1 can never fire; tie them low so the
        # crossbar stays a full, regular n x n array.
        for j in range(i + 1, n):
            row.append(circuit.const(False, name=f"route_{i}_{j}"))
        route.append(row)

    # Output valid bits: yv_j = OR_i route_{i}_{j}.
    for j in range(n):
        or_wire = or_tree(circuit, [route[i][j] for i in range(n)])
        circuit.set_name(f"yv{j}", or_wire)

    # Data path: y_j = OR_i (d_i AND route_{i}_{j}).
    if with_datapath:
        for j in range(n):
            terms = [
                circuit.add_gate(Op.AND, data[i], route[i][j]) for i in range(n)
            ]
            circuit.set_name(f"y{j}", or_tree(circuit, terms))
    return circuit


class GateHyperconcentrator(ConcentratorSwitch):
    """A hyperconcentrator switch backed by actual netlist simulation.

    Functionally interchangeable with
    :class:`repro.switches.hyperconcentrator.Hyperconcentrator`; the
    tests verify the two agree on every valid-bit pattern for small n.
    """

    def __init__(self, n: int, *, with_datapath: bool = False):
        self.n = n
        self.m = n
        self.with_datapath = with_datapath
        self.circuit = build_hyperconcentrator(n, with_datapath=with_datapath)
        self._route_wires = np.array(
            [
                [self.circuit.wire(f"route_{i}_{j}") for j in range(n)]
                for i in range(n)
            ],
            dtype=np.int64,
        )

    @property
    def spec(self) -> ConcentratorSpec:
        return ConcentratorSpec(n=self.n, m=self.n, alpha=1.0)

    def _simulate(self, valid: np.ndarray) -> np.ndarray:
        inputs = valid.astype(bool)
        if self.with_datapath:
            # Data inputs don't influence the controls; drive them low.
            inputs = np.concatenate([inputs, np.zeros(self.n, dtype=bool)])
        return evaluate(self.circuit, inputs)

    def setup(self, valid: np.ndarray) -> Routing:
        valid = self._check_valid(valid)
        values = self._simulate(valid)
        controls = values[self._route_wires]  # (n, n) crosspoint matrix
        routing = np.full(self.n, -1, dtype=np.int64)
        rows, cols = np.nonzero(controls)
        routing[rows] = cols
        return Routing(
            n_inputs=self.n, n_outputs=self.n, valid=valid, input_to_output=routing
        )

    # -- measured delay/cost figures -------------------------------------

    def datapath_delay(self) -> int:
        """Measured gate delays a message bit incurs (paths from data
        inputs to data outputs only)."""
        if not self.with_datapath:
            raise ConfigurationError("built without a datapath")
        sources = [self.circuit.wire(f"d{i}") for i in range(self.n)]
        sinks = [self.circuit.wire(f"y{j}") for j in range(self.n)]
        return critical_path_length(self.circuit, sources, sinks)

    def setup_delay(self) -> int:
        """Measured gate delays for the setup logic to settle (valid
        inputs to crosspoint controls)."""
        sources = [self.circuit.wire(f"v{i}") for i in range(self.n)]
        sinks = [int(w) for w in self._route_wires.reshape(-1)]
        return critical_path_length(self.circuit, sources, sinks)

    @property
    def component_count(self) -> int:
        return self.circuit.n_logic_gates

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"GateHyperconcentrator(n={self.n})"
