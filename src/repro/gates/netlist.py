"""Combinational netlist representation.

A :class:`Circuit` is a DAG of single-output gates over boolean wires.
Wires are integer ids; names are optional labels used by the switch
builders to find crosspoint controls and I/O ports.  The representation
is deliberately simple — append-only, topologically ordered by
construction — because every builder in this package creates gates in
dependency order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import CircuitError


class Op(Enum):
    """Gate operations.  INPUT wires are driven externally; CONST0 and
    CONST1 are tied low/high (delay 0, like hardwired pins)."""

    INPUT = "input"
    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NAND = "nand"
    NOR = "nor"

    @property
    def delay(self) -> int:
        """Gate delays contributed by this element (inputs/constants
        and buffers are free; every logic gate costs one)."""
        return 0 if self in (Op.INPUT, Op.CONST0, Op.CONST1, Op.BUF) else 1


@dataclass(frozen=True)
class Gate:
    """One gate: ``op`` applied to ``inputs`` drives wire ``output``."""

    op: Op
    inputs: tuple[int, ...]
    output: int


_ARITY = {
    Op.INPUT: 0,
    Op.CONST0: 0,
    Op.CONST1: 0,
    Op.BUF: 1,
    Op.NOT: 1,
}


@dataclass
class Circuit:
    """An append-only combinational netlist.

    Gates must be added in topological order (inputs before use), which
    all builders here do naturally; :meth:`add_gate` enforces it.
    """

    gates: list[Gate] = field(default_factory=list)
    names: dict[str, int] = field(default_factory=dict)
    _driven: set[int] = field(default_factory=set)

    @property
    def n_wires(self) -> int:
        return len(self.gates)

    @property
    def n_logic_gates(self) -> int:
        """Component count: gates with nonzero delay."""
        return sum(1 for g in self.gates if g.op.delay > 0)

    def add_gate(self, op: Op, *inputs: int, name: str | None = None) -> int:
        """Append a gate; returns the id of its output wire."""
        if op in _ARITY and len(inputs) != _ARITY[op]:
            raise CircuitError(f"{op.value} expects {_ARITY[op]} inputs, got {len(inputs)}")
        if op not in _ARITY and len(inputs) < 2:
            raise CircuitError(f"{op.value} expects at least 2 inputs, got {len(inputs)}")
        wire = len(self.gates)
        for src in inputs:
            if not 0 <= src < wire:
                raise CircuitError(
                    f"gate on wire {wire} references undriven wire {src} "
                    "(gates must be appended in topological order)"
                )
        self.gates.append(Gate(op=op, inputs=tuple(inputs), output=wire))
        if name is not None:
            self.set_name(name, wire)
        return wire

    def input(self, name: str | None = None) -> int:
        return self.add_gate(Op.INPUT, name=name)

    def const(self, value: bool, name: str | None = None) -> int:
        return self.add_gate(Op.CONST1 if value else Op.CONST0, name=name)

    def set_name(self, name: str, wire: int) -> None:
        if name in self.names:
            raise CircuitError(f"duplicate wire name {name!r}")
        self.names[name] = wire

    def wire(self, name: str) -> int:
        try:
            return self.names[name]
        except KeyError:
            raise CircuitError(f"no wire named {name!r}") from None

    def input_wires(self) -> list[int]:
        return [g.output for g in self.gates if g.op is Op.INPUT]

    def __len__(self) -> int:  # pragma: no cover - trivial
        return len(self.gates)
