"""Reusable combinational builders.

These are the circuit idioms the hyperconcentrator netlist is made of:
balanced OR/AND trees (logarithmic depth), ripple-carry and conditional
-sum adders, a parallel-prefix population counter (the rank network of
the setup logic), and constant-equality decoders (the crosspoint
controls).
"""

from __future__ import annotations

from repro.errors import CircuitError
from repro.gates.netlist import Circuit, Op


def balanced_tree(circuit: Circuit, op: Op, wires: list[int]) -> int:
    """Reduce ``wires`` with a balanced tree of 2-input ``op`` gates
    (depth ``⌈lg len⌉``).  A single wire passes through unchanged."""
    if not wires:
        raise CircuitError("cannot reduce an empty wire list")
    level = list(wires)
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(circuit.add_gate(op, level[i], level[i + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def or_tree(circuit: Circuit, wires: list[int]) -> int:
    return balanced_tree(circuit, Op.OR, wires)


def and_tree(circuit: Circuit, wires: list[int]) -> int:
    return balanced_tree(circuit, Op.AND, wires)


def half_adder(circuit: Circuit, a: int, b: int) -> tuple[int, int]:
    """(sum, carry) of two bits."""
    return circuit.add_gate(Op.XOR, a, b), circuit.add_gate(Op.AND, a, b)


def full_adder(circuit: Circuit, a: int, b: int, c: int) -> tuple[int, int]:
    """(sum, carry) of three bits."""
    s1, c1 = half_adder(circuit, a, b)
    s2, c2 = half_adder(circuit, s1, c)
    return s2, circuit.add_gate(Op.OR, c1, c2)


def ripple_add(circuit: Circuit, a: list[int], b: list[int]) -> list[int]:
    """Add two little-endian binary numbers; result has
    ``max(len) + 1`` bits.  Simple and compact; the prefix counter uses
    it pairwise so overall depth stays O(lg² n), which the delay bench
    reports alongside the paper's idealised 2 lg n."""
    width = max(len(a), len(b))
    a = a + [circuit.const(False)] * (width - len(a))
    b = b + [circuit.const(False)] * (width - len(b))
    out: list[int] = []
    carry: int | None = None
    for bit_a, bit_b in zip(a, b):
        if carry is None:
            s, carry = half_adder(circuit, bit_a, bit_b)
        else:
            s, carry = full_adder(circuit, bit_a, bit_b, carry)
        out.append(s)
    out.append(carry)
    return out


def popcount(circuit: Circuit, wires: list[int]) -> list[int]:
    """Population count of ``wires`` as a little-endian binary number,
    via a balanced adder tree (Wallace-style)."""
    if not wires:
        return [circuit.const(False)]
    numbers: list[list[int]] = [[w] for w in wires]
    while len(numbers) > 1:
        nxt = []
        for i in range(0, len(numbers) - 1, 2):
            nxt.append(ripple_add(circuit, numbers[i], numbers[i + 1]))
        if len(numbers) % 2:
            nxt.append(numbers[-1])
        numbers = nxt
    return numbers[0]


def prefix_popcounts(circuit: Circuit, wires: list[int]) -> list[list[int]]:
    """Inclusive prefix population counts: result[i] is the binary count
    of 1s among ``wires[0..i]``.

    Built with the Sklansky parallel-prefix pattern over binary
    addition: ``⌈lg n⌉`` combine levels, each a ripple adder.  This is
    the *rank network* of the hyperconcentrator setup logic.
    """
    n = len(wires)
    if n == 0:
        return []
    counts: list[list[int]] = [[w] for w in wires]
    span = 1
    while span < n:
        updated = list(counts)
        for block in range(0, n, 2 * span):
            pivot = block + span - 1  # last index of the left half
            if pivot >= n:
                continue
            for i in range(pivot + 1, min(block + 2 * span, n)):
                updated[i] = ripple_add(circuit, counts[pivot], counts[i])
        counts = updated
        span *= 2
    return counts


def equals_const(circuit: Circuit, bits: list[int], value: int) -> int:
    """A wire that is high iff the little-endian ``bits`` equal the
    constant ``value`` (an AND over literals — the crosspoint decode)."""
    if value < 0 or value >= (1 << len(bits)):
        raise CircuitError(f"constant {value} does not fit in {len(bits)} bits")
    literals = []
    for pos, wire in enumerate(bits):
        if (value >> pos) & 1:
            literals.append(wire)
        else:
            literals.append(circuit.add_gate(Op.NOT, wire))
    return and_tree(circuit, literals)
