"""Whole multichip switches assembled at the gate level.

For small n, the entire Revsort or Columnsort switch can be elaborated
into one flat combinational netlist — every hyperconcentrator chip as a
rank-crossbar sub-netlist, every wiring layer as named inter-chip
connections — and simulated gate by gate.  The tests check that this
"silicon" view agrees with the fast functional switches on every input,
closing the loop between the paper's circuit-level claims and the
library's model-level simulations.

Naming: chip (l, c) of a stage layout has inputs ``s{l}c{c}v{i}`` and
setup outputs ``s{l}c{c}yv{i}``; the final layer's outputs are also
aliased ``out{p}`` by flat matrix position.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.gates.builders import equals_const, or_tree, prefix_popcounts
from repro.gates.evaluate import evaluate
from repro.gates.netlist import Circuit, Op


def _chip_valid_sorter(
    circuit: Circuit, inputs: list[int], tag: str
) -> list[int]:
    """Instantiate one hyperconcentrator chip's *setup plane*: given
    valid-bit wires, return the chip's output valid-bit wires (the
    sorted valid bits).  ``yv_j = [rank of last input ≥ j+1]``."""
    w = len(inputs)
    ranks = prefix_popcounts(circuit, inputs)
    outputs: list[int] = []
    for j in range(w):
        # yv_j is high iff at least j+1 inputs are valid:
        # OR over i of (rank_i == j+1) — matches the crossbar chip.
        terms = []
        for i in range(j, w):  # rank_i <= i+1, so need i >= j
            terms.append(equals_const(circuit, ranks[i], j + 1))
        wire = or_tree(circuit, terms)
        circuit.set_name(f"{tag}yv{j}", wire)
        outputs.append(wire)
    return outputs


def _chip_crosspoints(
    circuit: Circuit, inputs: list[int], tag: str
) -> list[list[int]]:
    """One chip's full crosspoint control plane: ``route[i][j]`` high
    iff chip input i owns chip output j (valid, rank i == j+1)."""
    w = len(inputs)
    ranks = prefix_popcounts(circuit, inputs)
    route: list[list[int]] = []
    for i in range(w):
        row = []
        for j in range(w):
            if j <= i:
                eq = equals_const(circuit, ranks[i], j + 1)
                row.append(circuit.add_gate(Op.AND, inputs[i], eq))
            else:
                row.append(circuit.const(False))
        route.append(row)
    # Idle outputs: invalid inputs fill the trailing wires in order so
    # the chip is a permutation (mirrors concentrate_permutation).
    # For valid-bit and data propagation only the valid crosspoints
    # matter; idle outputs carry 0.
    for j in range(w):
        yv = or_tree(circuit, [route[i][j] for i in range(w)])
        circuit.set_name(f"{tag}yv{j}", yv)
    return route


def build_gate_level_switch(
    stage_groups: list[list[np.ndarray]],
    wirings: list[np.ndarray | None],
    n: int,
    *,
    with_datapath: bool = False,
) -> tuple[Circuit, list[int]]:
    """Elaborate a multichip switch into one netlist.

    ``stage_groups[l]`` lists the wire-position groups (chips) of chip
    layer ``l``; ``wirings[l]`` is the position permutation applied
    *after* layer ``l`` (None = identity; the last entry is usually
    None).  Returns the circuit and the wires carrying the final valid
    bits by flat position (also named ``out{p}``).

    With ``with_datapath=True`` the circuit additionally carries data
    inputs ``d{i}`` whose bits ride the same crosspoints (one AND-OR
    crossbar per chip), emerging as ``dout{p}`` — the complete
    silicon-level message path of the multichip switch.
    """
    if len(wirings) != len(stage_groups):
        raise ConfigurationError("need exactly one wiring slot per chip layer")
    circuit = Circuit()
    position_wires = [circuit.input(name=f"v{i}") for i in range(n)]
    data_wires = (
        [circuit.input(name=f"d{i}") for i in range(n)] if with_datapath else []
    )

    for layer, groups in enumerate(stage_groups):
        new_wires = list(position_wires)
        new_data = list(data_wires)
        for chip_index, group in enumerate(groups):
            chip_inputs = [position_wires[p] for p in group]
            tag = f"s{layer}c{chip_index}"
            if with_datapath:
                route = _chip_crosspoints(circuit, chip_inputs, tag)
                w = len(group)
                for j, p in enumerate(group):
                    new_wires[p] = circuit.wire(f"{tag}yv{j}")
                    terms = [
                        circuit.add_gate(
                            Op.AND, data_wires[group[i]], route[i][j]
                        )
                        for i in range(w)
                    ]
                    new_data[p] = or_tree(circuit, terms)
            else:
                chip_outputs = _chip_valid_sorter(circuit, chip_inputs, tag)
                for wire, p in zip(chip_outputs, group):
                    new_wires[p] = wire
        position_wires = new_wires
        data_wires = new_data
        wiring = wirings[layer]
        if wiring is not None:
            moved = list(position_wires)
            moved_data = list(data_wires)
            for old_pos in range(n):
                moved[int(wiring[old_pos])] = position_wires[old_pos]
                if with_datapath:
                    moved_data[int(wiring[old_pos])] = data_wires[old_pos]
            position_wires = moved
            data_wires = moved_data

    for p, wire in enumerate(position_wires):
        circuit.set_name(f"out{p}", circuit.add_gate(Op.BUF, wire))
    if with_datapath:
        for p, wire in enumerate(data_wires):
            circuit.set_name(f"dout{p}", circuit.add_gate(Op.BUF, wire))
    outs = [circuit.wire(f"out{p}") for p in range(n)]
    return circuit, outs


def build_revsort_switch_gates(
    n: int, *, with_datapath: bool = False
) -> tuple[Circuit, list[int]]:
    """The full Section 4 switch as one netlist (setup plane, plus the
    message datapath when requested)."""
    from repro.mesh.order import rev_rotate_permutation
    from repro.switches.revsort_switch import RevsortSwitch

    switch = RevsortSwitch(n, n)
    side = switch.side
    from repro.switches.wiring import column_groups, row_groups

    stage_groups = [
        column_groups(side, side),
        row_groups(side, side),
        column_groups(side, side),
    ]
    wirings = [None, rev_rotate_permutation(side), None]
    return build_gate_level_switch(
        stage_groups, wirings, n, with_datapath=with_datapath
    )


def build_columnsort_switch_gates(
    r: int, s: int, *, with_datapath: bool = False
) -> tuple[Circuit, list[int]]:
    """The full Section 5 switch as one netlist."""
    from repro.mesh.order import cm_to_rm_permutation
    from repro.switches.wiring import column_groups

    n = r * s
    stage_groups = [column_groups(r, s), column_groups(r, s)]
    wirings = [cm_to_rm_permutation(r, s), None]
    return build_gate_level_switch(
        stage_groups, wirings, n, with_datapath=with_datapath
    )


def simulate_valid_bits(
    circuit: Circuit, outs: list[int], valid: np.ndarray
) -> np.ndarray:
    """Evaluate the setup plane: final valid bit at each flat position."""
    values = evaluate(circuit, np.asarray(valid, dtype=bool))
    return values[outs]
